//! Routing-performance tracker: sweeps circuit sizes, times every router,
//! A/B-compares the generic router against the preserved pre-PR pairwise
//! implementation, and writes `BENCH_routing.json` for trend tracking.
//!
//! ```text
//! perf_report [--sizes 20,50,100] [--factor 10] [--reps 7] \
//!             [--batch 8] [--threads N] [--out BENCH_routing.json]
//! ```
//!
//! Reported per size: median wall-clock for the pre-PR reference (frozen
//! pre-arena IR) and the incremental arena router (plus their
//! heap-allocation counts, measured with a counting global allocator),
//! schedule stats, a byte-identity check of the two serialised schedules
//! (each through its own writer), and batch-compilation throughput on
//! `--threads` workers. The qsim, QAOA and QEC routers get
//! wall-clock/stats rows on their own workload families (the qec sweep
//! uses the largest distance whose `d²` register fits each size), and a
//! `families[]` section records the ancilla-vs-SWAP depth comparison
//! (`qpilot_bench::depth`) at fixed family sizes. The `routers[]` rows
//! report best-of-reps (`min_secs`) rather than medians: routing is
//! deterministic, so noise only ever inflates a sample, and the CI
//! ceilings should gate the code, not the load of a shared runner. Run
//! `--sizes 10,100 --factor 3 --reps 7 --batch 2` as a CI smoke test
//! (100 must be included: the per-router ceilings gate at 100q).
//!
//! With `--check <thresholds.json>` the freshly-written report is gated
//! against `qpilot.bench.thresholds/v1` (see `qpilot_bench::check`):
//! any violated minimum speedup / alloc ratio, exceeded allocation
//! ceiling, or non-identical schedule exits non-zero, failing the CI
//! build instead of merely smoke-testing the output file.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use qpilot_bench::{arg_num, arg_value, check, compile_batch, default_threads, depth, Table};
use qpilot_core::compile::{CompileOptions, Compiler, Workload};
use qpilot_core::generic::GenericRouterOptions;
use qpilot_core::generic_reference::route_reference;
use qpilot_core::obs;
use qpilot_core::{CompiledProgram, FpqaConfig};
use qpilot_workloads::graphs::random_regular;
use qpilot_workloads::pauli::{random_pauli_strings, PauliWorkloadConfig};
use qpilot_workloads::random::{random_circuit, RandomCircuitConfig};

/// Counts heap operations so the report can track allocation churn — the
/// resource the incremental engine and scratch reuse actually eliminate.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCS.load(Ordering::Relaxed) - before)
}

/// Median wall-clock seconds over `reps` runs.
fn median_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            let out = f();
            let dt = t.elapsed().as_secs_f64();
            drop(out);
            dt
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Minimum wall-clock seconds over `reps` runs — the aggregation the
/// per-router CI ceilings gate on. Routing is deterministic, so its true
/// cost is a constant and scheduler/frequency noise only ever *inflates*
/// a sample (the same argument `measure_obs_overhead` uses): the minimum
/// estimates the router's achievable latency where a median would gate
/// on the load of a shared CI runner instead of the code.
fn min_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            let out = f();
            let dt = t.elapsed().as_secs_f64();
            drop(out);
            dt
        })
        .fold(f64::INFINITY, f64::min)
}

struct GenericRow {
    qubits: u32,
    two_qubit_gates: usize,
    wall_reference: f64,
    wall_incremental: f64,
    allocs_reference: u64,
    allocs_incremental: u64,
    identical: bool,
    stages: usize,
    rydberg_depth: usize,
    native_two_qubit: usize,
    batch_circuits: usize,
    batch_threads: usize,
    wall_batch_per_circuit: f64,
}

struct AuxRow {
    router: &'static str,
    qubits: u32,
    workload: String,
    wall: f64,
    stages: usize,
    rydberg_depth: usize,
    native_two_qubit: usize,
}

fn bench_generic(n: u32, factor: usize, reps: usize, batch: usize, threads: usize) -> GenericRow {
    let circuit = random_circuit(&RandomCircuitConfig::paper(n, factor, 1));
    let config = FpqaConfig::square_for(n);
    let options = GenericRouterOptions::default();

    let wall_reference = median_secs(reps, || {
        route_reference(&circuit, &config, options).expect("reference routes")
    });
    // The measured path is the unified pipeline (`Compiler::compile`) —
    // exactly what the service workers and library callers run. The
    // workload and Compiler are built outside the timed/counted region.
    let workload = Workload::circuit(circuit.clone());
    let mut compiler = Compiler::with_options(CompileOptions::new().router_options(options));
    let wall_incremental = median_secs(reps, || {
        compiler
            .compile(&workload, &config)
            .expect("incremental routes")
            .into_program()
    });
    let (reference, allocs_reference) =
        count_allocs(|| route_reference(&circuit, &config, options).expect("reference routes"));
    let (program, allocs_incremental) = count_allocs(|| {
        compiler
            .compile(&workload, &config)
            .expect("incremental routes")
            .into_program()
    });
    // Byte identity across the two IRs: the frozen pre-arena writer and
    // the arena writer must produce the same `qpilot.schedule/v1` bytes
    // (serialisation happens outside the timed/counted regions).
    let identical = reference.to_json() == qpilot_core::wire::schedule_to_json(program.schedule())
        && reference.stats() == *program.stats();

    // Batch throughput: `batch` distinct circuits of the same shape.
    let batch_circuits: Vec<_> = (0..batch.max(1))
        .map(|seed| random_circuit(&RandomCircuitConfig::paper(n, factor, seed as u64 + 1)))
        .collect();
    let wall_batch = median_secs(reps.min(3), || {
        let results = compile_batch(&batch_circuits, &config, threads);
        assert!(results.iter().all(Result::is_ok));
        results
    });

    let stats = program.stats();
    GenericRow {
        qubits: n,
        two_qubit_gates: circuit.two_qubit_count(),
        wall_reference,
        wall_incremental,
        allocs_reference,
        allocs_incremental,
        identical,
        stages: program.schedule().num_stages(),
        rydberg_depth: stats.two_qubit_depth,
        native_two_qubit: stats.two_qubit_gates,
        batch_circuits: batch_circuits.len(),
        batch_threads: threads,
        wall_batch_per_circuit: wall_batch / batch_circuits.len() as f64,
    }
}

fn aux_row(
    router: &'static str,
    qubits: u32,
    workload: String,
    wall: f64,
    program: &CompiledProgram,
) -> AuxRow {
    let stats = program.stats();
    AuxRow {
        router,
        qubits,
        workload,
        wall,
        stages: program.schedule().num_stages(),
        rydberg_depth: stats.two_qubit_depth,
        native_two_qubit: stats.two_qubit_gates,
    }
}

/// A `routers[]` row for the generic router measured through the same
/// `Compiler` front door as the specialised ones, so the per-router CI
/// ceilings (`routing.routers` in the thresholds file) gate all three
/// routers on like-for-like end-to-end medians.
fn bench_generic_aux(n: u32, factor: usize, reps: usize) -> AuxRow {
    let config = FpqaConfig::square_for(n);
    let workload = Workload::circuit(random_circuit(&RandomCircuitConfig::paper(n, factor, 1)));
    let mut compiler = Compiler::new();
    let wall = min_secs(reps, || {
        compiler
            .compile(&workload, &config)
            .expect("generic routes")
            .into_program()
    });
    let program = compiler
        .compile(&workload, &config)
        .expect("generic routes")
        .into_program();
    aux_row("generic", n, format!("paper_f{factor}"), wall, &program)
}

fn bench_qsim(n: u32, reps: usize) -> AuxRow {
    let strings = random_pauli_strings(&PauliWorkloadConfig {
        num_qubits: n as usize,
        num_strings: 20,
        pauli_probability: 0.3,
        seed: 2,
    });
    let config = FpqaConfig::square_for(n);
    let workload = Workload::pauli_strings(strings, 0.4);
    let mut compiler = Compiler::new();
    let wall = min_secs(reps, || {
        compiler
            .compile(&workload, &config)
            .expect("qsim routes")
            .into_program()
    });
    let program = compiler
        .compile(&workload, &config)
        .expect("qsim routes")
        .into_program();
    aux_row("qsim", n, "pauli_p0.3_20s".into(), wall, &program)
}

fn bench_qaoa(n: u32, reps: usize) -> AuxRow {
    let graph = random_regular(n, 3, 4).expect("regular graph");
    let config = FpqaConfig::square_for(n);
    let workload = Workload::qaoa_cost_layer(n, graph.edges().to_vec(), 0.7);
    let mut compiler = Compiler::new();
    let wall = min_secs(reps, || {
        compiler
            .compile(&workload, &config)
            .expect("qaoa routes")
            .into_program()
    });
    let program = compiler
        .compile(&workload, &config)
        .expect("qaoa routes")
        .into_program();
    aux_row("qaoa", n, "3_regular".into(), wall, &program)
}

/// The largest surface-code distance whose `d²` data qubits fit in `n` —
/// the qec sweep rides the same `--sizes` axis as the other routers
/// (20 → d4, 50 → d7, 100 → d10), and the row's `qubits` field is the
/// actual `d²` register so threshold gates match on real widths.
fn qec_distance_for(n: u32) -> u32 {
    let mut d = 2;
    while (d + 1) * (d + 1) <= n {
        d += 1;
    }
    d.max(2)
}

fn bench_qec(n: u32, reps: usize) -> AuxRow {
    let d = qec_distance_for(n);
    let workload = Workload::surface_code(d, 1, 0.37);
    let config = workload.config(None);
    let mut compiler = Compiler::new();
    let wall = min_secs(reps, || {
        compiler
            .compile(&workload, &config)
            .expect("qec routes")
            .into_program()
    });
    let program = compiler
        .compile(&workload, &config)
        .expect("qec routes")
        .into_program();
    aux_row("qec", d * d, format!("surface_d{d}_r1"), wall, &program)
}

/// One `stage_profile` report row: a router stage's median per-route
/// cost and its share of the router's total instrumented time.
struct StageRow {
    router: &'static str,
    stage: &'static str,
    count: u64,
    p50_ms: f64,
    share: f64,
}

/// Populates the per-stage route histograms (`obs::ROUTE_STAGES`) with
/// `reps` fresh compiles per router at size `n`, then snapshots them
/// into report rows. Runs on reset histograms so earlier sweep sections
/// cannot skew the medians.
fn profile_stages(n: u32, factor: usize, reps: usize) -> Vec<StageRow> {
    obs::reset_route_stages();
    obs::set_enabled(true);
    // Profile every route call here (serving processes sample 1-in-N).
    obs::set_stage_sampling(1);
    let config = FpqaConfig::square_for(n);
    let mut compiler = Compiler::new();
    let circuit = Workload::circuit(random_circuit(&RandomCircuitConfig::paper(n, factor, 1)));
    let pauli = Workload::pauli_strings(
        random_pauli_strings(&PauliWorkloadConfig {
            num_qubits: n as usize,
            num_strings: 20,
            pauli_probability: 0.3,
            seed: 2,
        }),
        0.4,
    );
    let graph = random_regular(n, 3, 4).expect("regular graph");
    let qaoa = Workload::qaoa_cost_layer(n, graph.edges().to_vec(), 0.7);
    let qec = Workload::surface_code(qec_distance_for(n), 1, 0.37);
    let qec_config = qec.config(None);
    for (workload, config) in [
        (&circuit, &config),
        (&pauli, &config),
        (&qaoa, &config),
        (&qec, &qec_config),
    ] {
        for _ in 0..reps.max(1) {
            compiler
                .compile(workload, config)
                .expect("profiled route")
                .into_program();
        }
    }
    obs::set_stage_sampling(obs::DEFAULT_STAGE_SAMPLING);
    let totals: Vec<(&str, u64)> = ["generic", "qsim", "qaoa", "qec"]
        .iter()
        .map(|&router| {
            let sum = obs::ROUTE_STAGES
                .iter()
                .filter(|s| s.router == router)
                .map(|s| s.histogram.snapshot().sum_ns())
                .sum();
            (router, sum)
        })
        .collect();
    obs::ROUTE_STAGES
        .iter()
        .map(|s| {
            let snap = s.histogram.snapshot();
            let total = totals
                .iter()
                .find(|(r, _)| *r == s.router)
                .map_or(0, |&(_, t)| t);
            StageRow {
                router: s.router,
                stage: s.stage,
                count: snap.count(),
                p50_ms: snap.percentile(0.50) as f64 * 1e-6,
                share: if total == 0 {
                    0.0
                } else {
                    snap.sum_ns() as f64 / total as f64
                },
            }
        })
        .collect()
}

/// Steady-state instrumentation overhead of the route path, in percent
/// of uninstrumented route wall-clock.
///
/// Measures the *fully profiled* route (stage sampling forced to 1)
/// against the uninstrumented route and amortises the difference over
/// the production sampling period — the exact cost a serving process
/// pays per route on average. Both sides use the minimum over many
/// interleaved single-route samples: the instrumentation cost is
/// deterministic while scheduler and frequency noise only ever inflate
/// a sample, so min-vs-min isolates the true cost where a median would
/// drown it in machine noise. Residual jitter can still push the
/// result slightly negative; the CI gate (`max_obs_overhead_pct`) only
/// caps the positive direction.
fn measure_obs_overhead(n: u32, factor: usize, reps: usize) -> f64 {
    let config = FpqaConfig::square_for(n);
    let workload = Workload::circuit(random_circuit(&RandomCircuitConfig::paper(n, factor, 1)));
    let mut compiler = Compiler::new();
    compiler
        .compile(&workload, &config)
        .expect("warm-up route")
        .into_program();
    obs::set_stage_sampling(1);
    let mut route = |profiled: bool| {
        obs::set_enabled(profiled);
        let t = Instant::now();
        compiler
            .compile(&workload, &config)
            .expect("overhead-probe route")
            .into_program();
        t.elapsed().as_secs_f64()
    };
    let (mut on, mut off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..(4 * reps.max(5)) {
        on = on.min(route(true));
        off = off.min(route(false));
    }
    obs::set_enabled(true);
    obs::set_stage_sampling(obs::DEFAULT_STAGE_SAMPLING);
    ((on / off.max(1e-12)) - 1.0) * 100.0 / f64::from(obs::DEFAULT_STAGE_SAMPLING)
}

fn main() {
    let sizes: Vec<u32> = arg_value("--sizes")
        .map(|v| v.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![20, 50, 100]);
    if sizes.is_empty() || sizes.contains(&0) {
        eprintln!("error: --sizes needs a comma-separated list of positive qubit counts");
        std::process::exit(2);
    }
    let factor: usize = arg_num("--factor", 10);
    let reps: usize = arg_num("--reps", 7);
    let batch: usize = arg_num("--batch", 8);
    let threads: usize = arg_num("--threads", default_threads());
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_routing.json".to_string());
    let check_path = arg_value("--check");

    let mut generic_rows = Vec::new();
    let mut aux_rows = Vec::new();
    for &n in &sizes {
        generic_rows.push(bench_generic(n, factor, reps, batch, threads));
        aux_rows.push(bench_generic_aux(n, factor, reps));
        aux_rows.push(bench_qsim(n, reps));
        aux_rows.push(bench_qaoa(n, reps));
        aux_rows.push(bench_qec(n, reps));
    }

    let mut table = Table::new(&[
        "qubits",
        "CZs",
        "ref_ms",
        "inc_ms",
        "speedup",
        "alloc_ratio",
        "identical",
        "batch_ms/c",
    ]);
    for row in &generic_rows {
        table.row(vec![
            row.qubits.to_string(),
            row.two_qubit_gates.to_string(),
            format!("{:.3}", row.wall_reference * 1e3),
            format!("{:.3}", row.wall_incremental * 1e3),
            format!("{:.2}", row.wall_reference / row.wall_incremental),
            format!(
                "{:.2}",
                row.allocs_reference as f64 / row.allocs_incremental as f64
            ),
            row.identical.to_string(),
            format!("{:.3}", row.wall_batch_per_circuit * 1e3),
        ]);
    }
    println!("generic router: incremental vs pre-PR reference");
    table.print();

    let mut aux = Table::new(&["router", "qubits", "workload", "ms", "stages", "2q"]);
    for row in &aux_rows {
        aux.row(vec![
            row.router.to_string(),
            row.qubits.to_string(),
            row.workload.clone(),
            format!("{:.3}", row.wall * 1e3),
            row.stages.to_string(),
            row.native_two_qubit.to_string(),
        ]);
    }
    println!("\nspecialised routers");
    aux.print();

    // Per-stage route profile + instrumentation overhead, at the largest
    // swept size (where stage costs are most visible).
    let n_max = *sizes.iter().max().expect("nonempty sizes");
    let stage_rows = profile_stages(n_max, factor, reps);
    let obs_overhead_pct = measure_obs_overhead(n_max, factor, reps);
    let mut prof = Table::new(&["router", "stage", "count", "p50_ms", "share"]);
    for row in &stage_rows {
        prof.row(vec![
            row.router.to_string(),
            row.stage.to_string(),
            row.count.to_string(),
            format!("{:.4}", row.p50_ms),
            format!("{:.1}%", row.share * 100.0),
        ]);
    }
    println!("\nper-stage route profile ({n_max}q, obs overhead {obs_overhead_pct:+.2}%)");
    prof.print();

    // The ancilla-vs-SWAP depth table (fixed family sizes, independent
    // of --sizes, so the gated rows exist in smoke and full runs alike).
    let family_rows = depth::measure_families();
    println!();
    depth::print_families(&family_rows);

    let json = render_json(
        &sizes,
        factor,
        reps,
        batch,
        threads,
        &generic_rows,
        &aux_rows,
        &stage_rows,
        &family_rows,
        obs_overhead_pct,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");

    assert!(
        generic_rows.iter().all(|r| r.identical),
        "incremental router diverged from the reference schedule"
    );

    if let Some(path) = check_path {
        let thresholds = match check::load_thresholds(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let report = qpilot_core::json::parse(&json).expect("own report is valid JSON");
        check::enforce("routing", &check::check_routing(&report, &thresholds));
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    sizes: &[u32],
    factor: usize,
    reps: usize,
    batch: usize,
    threads: usize,
    generic_rows: &[GenericRow],
    aux_rows: &[AuxRow],
    stage_rows: &[StageRow],
    family_rows: &[depth::FamilyRow],
    obs_overhead_pct: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"qpilot.bench.routing/v1\",");
    let _ = writeln!(
        s,
        "  \"config\": {{\"sizes\": {:?}, \"factor\": {factor}, \"reps\": {reps}, \"batch\": {batch}, \"threads\": {threads}}},",
        sizes
    );
    s.push_str("  \"generic\": [\n");
    for (i, r) in generic_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"qubits\": {}, \"two_qubit_gates\": {}, \
             \"wall_s_reference\": {:.6}, \"wall_s_incremental\": {:.6}, \"speedup\": {:.3}, \
             \"allocs_reference\": {}, \"allocs_incremental\": {}, \"alloc_ratio\": {:.3}, \
             \"schedules_identical\": {}, \"stages\": {}, \"rydberg_depth\": {}, \
             \"native_two_qubit\": {}, \"batch_circuits\": {}, \"batch_threads\": {}, \
             \"wall_s_batch_per_circuit\": {:.6}}}",
            r.qubits,
            r.two_qubit_gates,
            r.wall_reference,
            r.wall_incremental,
            r.wall_reference / r.wall_incremental,
            r.allocs_reference,
            r.allocs_incremental,
            r.allocs_reference as f64 / r.allocs_incremental as f64,
            r.identical,
            r.stages,
            r.rydberg_depth,
            r.native_two_qubit,
            r.batch_circuits,
            r.batch_threads,
            r.wall_batch_per_circuit,
        );
        s.push_str(if i + 1 < generic_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n  \"routers\": [\n");
    for (i, r) in aux_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"router\": \"{}\", \"qubits\": {}, \"workload\": \"{}\", \
             \"wall_s\": {:.6}, \"stages\": {}, \"rydberg_depth\": {}, \"native_two_qubit\": {}}}",
            r.router, r.qubits, r.workload, r.wall, r.stages, r.rydberg_depth, r.native_two_qubit,
        );
        s.push_str(if i + 1 < aux_rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"stage_profile\": [\n");
    for (i, r) in stage_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"router\": \"{}\", \"stage\": \"{}\", \"count\": {}, \
             \"p50_ms\": {:.6}, \"share\": {:.4}}}",
            r.router, r.stage, r.count, r.p50_ms, r.share,
        );
        s.push_str(if i + 1 < stage_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(
        s,
        "  \"families\": {},",
        depth::families_json_array(family_rows)
    );
    let _ = writeln!(s, "  \"obs_overhead_pct\": {obs_overhead_pct:.3}");
    s.push_str("}\n");
    s
}

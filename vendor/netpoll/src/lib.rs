//! Offline readiness-polling shim: the syscall surface a reactor needs,
//! vendored like `rand`/`proptest` because this build environment has no
//! registry access (the real-world equivalent is `mio`, and eventually
//! tokio — see `vendor/README.md` for the swap procedure).
//!
//! The crate exposes exactly three things:
//!
//! * [`Poller`] — readiness notification for a set of file descriptors
//!   (`epoll(7)` on Linux, `poll(2)` on other Unixes), level-triggered;
//! * [`Waker`] — a pipe-backed handle that makes [`Poller::wait`] return
//!   from another thread (the self-pipe trick);
//! * [`Interest`] / [`Event`] — what to watch and what fired.
//!
//! Every `unsafe` block in the serving stack lives in this crate; the
//! consumers (`qpilot-service`) stay `#![forbid(unsafe_code)]`. The FFI
//! declarations bind the C ABI symbols std already links, so no external
//! crate is required.
//!
//! # Example
//!
//! ```
//! use netpoll::{Interest, Poller, Waker};
//!
//! let poller = Poller::new().unwrap();
//! let waker = Waker::new(&poller, 0).unwrap(); // token 0
//! waker.wake().unwrap();
//! let mut events = Vec::new();
//! poller.wait(&mut events, Some(std::time::Duration::from_secs(1))).unwrap();
//! assert_eq!(events[0].token, 0);
//! assert!(events[0].readable);
//! waker.drain(); // level-triggered: consume the wake bytes
//! # let _ = Interest::READABLE;
//! ```

#![warn(missing_docs)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What readiness to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (includes peer hang-up: a read will
    /// not block, it returns 0 or the buffered tail).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// Error or hang-up condition; the owner should tear the
    /// descriptor down after draining what it can.
    pub hangup: bool,
}

mod sys {
    //! Raw syscall bindings. The symbols come from the libc that std
    //! already links; the declarations mirror the POSIX/Linux ABI.
    #![allow(non_camel_case_types)]

    use std::os::raw::{c_int, c_void};

    #[cfg(not(target_os = "linux"))]
    pub type nfds_t = usize;

    #[cfg(target_os = "linux")]
    #[repr(C, packed)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_os = "linux"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(not(target_os = "linux"))]
    pub const POLLIN: i16 = 0x001;
    #[cfg(not(target_os = "linux"))]
    pub const POLLOUT: i16 = 0x004;
    #[cfg(not(target_os = "linux"))]
    pub const POLLERR: i16 = 0x008;
    #[cfg(not(target_os = "linux"))]
    pub const POLLHUP: i16 = 0x010;

    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x001;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x004;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x008;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x010;
    #[cfg(target_os = "linux")]
    pub const EPOLLRDHUP: u32 = 0x2000;

    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: c_int = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: c_int = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0x800;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x4;

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        #[cfg(not(target_os = "linux"))]
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// Puts a raw descriptor into non-blocking mode (used for descriptors
/// std did not create, e.g. the waker pipe; sockets should prefer
/// `TcpStream::set_nonblocking`).
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on a descriptor we own; F_GETFL/F_SETFL take and
    // return plain integers.
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            // Round a sub-millisecond timeout up so it blocks instead
            // of busy-spinning as 0 ms.
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod imp {
    //! `epoll(7)` backend: O(ready) wait, kernel-held interest list.
    use super::*;

    /// Readiness notification over a set of registered descriptors.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates an epoll instance (close-on-exec).
        ///
        /// # Errors
        ///
        /// The `epoll_create1` failure, verbatim.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(
            &self,
            op: std::os::raw::c_int,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut events = sys::EPOLLRDHUP;
            if interest.readable {
                events |= sys::EPOLLIN;
            }
            if interest.writable {
                events |= sys::EPOLLOUT;
            }
            let mut ev = sys::epoll_event {
                events,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Starts watching `fd` with `interest`; events carry `token`.
        ///
        /// # Errors
        ///
        /// The `epoll_ctl` failure, verbatim.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes an existing registration's interest (and token).
        ///
        /// # Errors
        ///
        /// The `epoll_ctl` failure, verbatim.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// The `epoll_ctl` failure, verbatim.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = sys::epoll_event { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels demand a non-null event pointer
            // for EPOLL_CTL_DEL; passing one is harmless on newer ones.
            let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Blocks until at least one registered descriptor is ready or
        /// `timeout` lapses (`None` = wait forever), appending into
        /// `events` (cleared first). Returns the number of events.
        /// `Interrupted` wakeups are retried internally.
        ///
        /// # Errors
        ///
        /// The `epoll_wait` failure, verbatim.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            const CAP: usize = 256;
            let mut raw: Vec<sys::epoll_event> = Vec::with_capacity(CAP);
            let n = loop {
                // SAFETY: `raw` has CAP capacity; the kernel writes at
                // most `maxevents` entries and we set the length to the
                // count it reports.
                let rc = unsafe {
                    sys::epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms(timeout))
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            // SAFETY: the kernel initialised the first `n` entries.
            unsafe { raw.set_len(n) };
            for ev in &raw {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the epoll fd we created.
            unsafe { sys::close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Portable `poll(2)` backend for non-Linux Unixes: the interest
    //! list lives in userspace and is rebuilt per wait — O(n), fine at
    //! operator scale and only a fallback.
    use super::*;
    use std::sync::Mutex;

    /// Readiness notification over a set of registered descriptors.
    #[derive(Debug)]
    pub struct Poller {
        registered: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        /// Creates a poller.
        ///
        /// # Errors
        ///
        /// Infallible on this backend (signature matches epoll's).
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(Vec::new()),
            })
        }

        /// Starts watching `fd` with `interest`; events carry `token`.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().push((fd, token, interest));
            Ok(())
        }

        /// Changes an existing registration's interest (and token).
        ///
        /// # Errors
        ///
        /// `NotFound` when `fd` is not registered.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            for slot in reg.iter_mut() {
                if slot.0 == fd {
                    *slot = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().retain(|slot| slot.0 != fd);
            Ok(())
        }

        /// See the epoll backend: identical contract over `poll(2)`.
        ///
        /// # Errors
        ///
        /// The `poll` failure, verbatim.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let snapshot: Vec<(RawFd, u64, Interest)> = self.registered.lock().unwrap().clone();
            let mut fds: Vec<sys::pollfd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| sys::pollfd {
                    fd,
                    events: if interest.readable { sys::POLLIN } else { 0 }
                        | if interest.writable { sys::POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = loop {
                // SAFETY: `fds` is a live slice for the duration of the
                // call; the kernel only writes `revents`.
                let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len(), timeout_ms(timeout)) };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for (slot, fd) in snapshot.iter().zip(&fds) {
                if fd.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token: slot.1,
                    readable: fd.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                    writable: fd.revents & sys::POLLOUT != 0,
                    hangup: fd.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }
}

pub use imp::Poller;

/// Wakes a [`Poller::wait`] from another thread: the self-pipe trick.
/// The read end is registered with the poller under the caller's token;
/// [`Waker::wake`] writes one byte, making the poller report that token
/// readable. Level-triggered, so the owner must [`Waker::drain`] after
/// observing the token or the poller will keep reporting it.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates the pipe and registers its read end with `poller` under
    /// `token`.
    ///
    /// # Errors
    ///
    /// Pipe creation or registration failures.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a live two-element array the kernel fills.
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        set_nonblocking(waker.read_fd)?;
        set_nonblocking(waker.write_fd)?;
        poller.register(waker.read_fd, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// Makes the poller's next (or current) wait return. Safe to call
    /// from any thread; a full pipe means a wake is already pending, so
    /// the short write is success, not failure.
    ///
    /// # Errors
    ///
    /// Unexpected `write` failures (not `WouldBlock`).
    pub fn wake(&self) -> io::Result<()> {
        let byte = 1u8;
        // SAFETY: one live byte, write copies it before returning.
        let rc = unsafe { sys::write(self.write_fd, (&byte as *const u8).cast(), 1) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Consumes pending wake bytes (call after handling the token's
    /// readable event; the poller is level-triggered).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is a live 64-byte buffer.
            let rc = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if rc <= 0 {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing the pipe fds we created. The poller drops its
        // kernel-side registration when the descriptor closes.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, 7).unwrap();
        let mut events = Vec::new();
        // Nothing pending: the wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        waker.wake().unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained waker stops reporting readable");
    }

    #[test]
    fn socket_readability_and_interest_changes() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(server_side.as_raw_fd(), 2, Interest::READABLE)
            .unwrap();

        client.write_all(b"hello").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        let mut buf = [0u8; 8];
        let mut stream_ref = &server_side;
        let n = stream_ref.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");

        // Writable interest on a connected socket reports immediately.
        poller
            .modify(server_side.as_raw_fd(), 2, Interest::BOTH)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));
        poller.deregister(server_side.as_raw_fd()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deregistered socket stops reporting");
    }

    #[test]
    fn peer_hangup_reports_readable() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(server_side.as_raw_fd(), 3, Interest::READABLE)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        // A closed peer must surface as readable (read returns 0) so
        // the reactor observes EOF through its normal read path.
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }
}

//! Solver-style QAOA stage scheduling (the Table 2 comparators).
//!
//! The SMT-solver compiler of Tan et al. \[61\] finds depth-optimal QAOA
//! schedules on the FPQA but scales exponentially; its relaxation \[62\]
//! trades optimality for runtime. On QAOA workloads the optimum the solver
//! converges to is the minimum number of *stages* partitioning the edge set
//! into groups of disjoint edges — the graph's chromatic index (3-regular
//! graphs: 3; 4-regular: 5 in the paper's Table 2, i.e. Δ or Δ+1 by
//! Vizing's theorem).
//!
//! We reproduce both behaviours:
//!
//! * [`exact_qaoa_stages`] — branch-and-bound edge colouring with a
//!   wall-clock timeout (exponential, like the SMT solver),
//! * [`greedy_qaoa_stages`] — maximal-matching peeling (polynomial, a few
//!   stages worse, like the iterative relaxation).

use std::time::{Duration, Instant};

/// Result of the exact scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverOutcome {
    /// Proven-optimal stage count.
    Optimal {
        /// Minimum number of stages.
        stages: usize,
        /// Time spent.
        elapsed: Duration,
    },
    /// The time budget ran out before the search finished.
    Timeout {
        /// Best feasible stage count found, if any.
        best_known: Option<usize>,
        /// Time spent.
        elapsed: Duration,
    },
}

impl SolverOutcome {
    /// Stage count if optimal.
    pub fn stages(&self) -> Option<usize> {
        match self {
            SolverOutcome::Optimal { stages, .. } => Some(*stages),
            SolverOutcome::Timeout { .. } => None,
        }
    }
}

/// Exact minimum stage count (chromatic index) by branch and bound.
///
/// Tries `k = Δ` first and falls back to `Δ+1` (always feasible by
/// Vizing); within each `k` a DFS assigns stages to edges in max-degree
/// order with symmetry breaking. Checks the deadline between nodes.
pub fn exact_qaoa_stages(
    num_qubits: u32,
    edges: &[(u32, u32)],
    timeout: Duration,
) -> SolverOutcome {
    let start = Instant::now();
    if edges.is_empty() {
        return SolverOutcome::Optimal {
            stages: 0,
            elapsed: start.elapsed(),
        };
    }
    let mut degree = vec![0usize; num_qubits as usize];
    for &(a, b) in edges {
        degree[a as usize] += 1;
        degree[b as usize] += 1;
    }
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Order edges by decreasing endpoint degree for better pruning.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by_key(|&i| {
        let (a, b) = edges[i];
        std::cmp::Reverse(degree[a as usize] + degree[b as usize])
    });

    let mut best_known: Option<usize> = None;
    for k in max_degree..=(max_degree + 1) {
        match color_with(edges, &order, num_qubits as usize, k, start, timeout) {
            ColorResult::Feasible => {
                return SolverOutcome::Optimal {
                    stages: k,
                    elapsed: start.elapsed(),
                };
            }
            ColorResult::Infeasible => continue,
            ColorResult::TimedOut => {
                // A (Δ+1)-stage schedule always exists even if unproven.
                best_known = Some(max_degree + 1)
                    .filter(|_| k > max_degree)
                    .or(best_known);
                return SolverOutcome::Timeout {
                    best_known,
                    elapsed: start.elapsed(),
                };
            }
        }
    }
    // Vizing guarantees Δ+1 colours suffice; reaching here means the DFS
    // disproved Δ and Δ+1, which is impossible for simple graphs.
    unreachable!("edge colouring with Δ+1 colours must exist");
}

enum ColorResult {
    Feasible,
    Infeasible,
    TimedOut,
}

fn color_with(
    edges: &[(u32, u32)],
    order: &[usize],
    num_qubits: usize,
    k: usize,
    start: Instant,
    timeout: Duration,
) -> ColorResult {
    // used[v] is a bitmask of stage colours taken at vertex v.
    let mut used = vec![0u64; num_qubits];
    if k > 63 {
        // Degenerate: fall back to "feasible" via greedy bound.
        return ColorResult::Feasible;
    }
    let mut stack: Vec<(usize, usize)> = Vec::with_capacity(order.len()); // (pos, color)
    let mut pos = 0usize;
    let mut next_color = 0usize;
    let mut max_color_used = 0usize; // symmetry breaking: colours introduced in order
    let mut checked = 0u32;
    loop {
        checked += 1;
        if checked.is_multiple_of(4096) && start.elapsed() > timeout {
            return ColorResult::TimedOut;
        }
        if pos == order.len() {
            return ColorResult::Feasible;
        }
        let (a, b) = edges[order[pos]];
        let (a, b) = (a as usize, b as usize);
        let taken = used[a] | used[b];
        // Allowed colours: < k, free at both endpoints, and at most one
        // beyond the highest colour used so far (symmetry breaking).
        let limit = (max_color_used + 1).min(k - 1);
        let mut color = next_color;
        let mut found = None;
        while color <= limit {
            if taken & (1 << color) == 0 {
                found = Some(color);
                break;
            }
            color += 1;
        }
        match found {
            Some(c) => {
                used[a] |= 1 << c;
                used[b] |= 1 << c;
                stack.push((pos, c));
                if c > max_color_used {
                    max_color_used = c;
                }
                pos += 1;
                next_color = 0;
            }
            None => {
                // Backtrack.
                match stack.pop() {
                    None => return ColorResult::Infeasible,
                    Some((prev_pos, prev_color)) => {
                        let (pa, pb) = edges[order[prev_pos]];
                        used[pa as usize] &= !(1 << prev_color);
                        used[pb as usize] &= !(1 << prev_color);
                        // Recompute max_color_used from the stack.
                        max_color_used = stack.iter().map(|&(_, c)| c).max().unwrap_or(0);
                        pos = prev_pos;
                        next_color = prev_color + 1;
                    }
                }
            }
        }
    }
}

/// Polynomial relaxation: repeatedly peel a maximal matching (greedy by
/// edge order) and count the stages.
pub fn greedy_qaoa_stages(num_qubits: u32, edges: &[(u32, u32)]) -> usize {
    let mut remaining: Vec<(u32, u32)> = edges.to_vec();
    let mut stages = 0usize;
    while !remaining.is_empty() {
        let mut busy = vec![false; num_qubits as usize];
        remaining.retain(|&(a, b)| {
            if busy[a as usize] || busy[b as usize] {
                true
            } else {
                busy[a as usize] = true;
                busy[b as usize] = true;
                false
            }
        });
        stages += 1;
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    const LONG: Duration = Duration::from_secs(5);

    fn triangle() -> Vec<(u32, u32)> {
        vec![(0, 1), (1, 2), (2, 0)]
    }

    #[test]
    fn triangle_needs_three_stages() {
        let out = exact_qaoa_stages(3, &triangle(), LONG);
        assert_eq!(out.stages(), Some(3));
    }

    #[test]
    fn perfect_matching_is_one_stage() {
        let out = exact_qaoa_stages(4, &[(0, 1), (2, 3)], LONG);
        assert_eq!(out.stages(), Some(1));
    }

    #[test]
    fn square_ring_two_stages() {
        let out = exact_qaoa_stages(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], LONG);
        assert_eq!(out.stages(), Some(2));
    }

    #[test]
    fn odd_ring_needs_three() {
        let ring5: Vec<(u32, u32)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        assert_eq!(exact_qaoa_stages(5, &ring5, LONG).stages(), Some(3));
    }

    #[test]
    fn k4_is_class_one() {
        // K4 is 3-regular and 3-edge-colourable.
        let k4: Vec<(u32, u32)> = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        assert_eq!(exact_qaoa_stages(4, &k4, LONG).stages(), Some(3));
    }

    #[test]
    fn petersen_graph_is_class_two() {
        // The Petersen graph is 3-regular with chromatic index 4.
        let outer: Vec<(u32, u32)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let spokes: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 5)).collect();
        let inner: Vec<(u32, u32)> = (0..5).map(|i| (i + 5, (i + 2) % 5 + 5)).collect();
        let edges: Vec<(u32, u32)> = outer.into_iter().chain(spokes).chain(inner).collect();
        assert_eq!(exact_qaoa_stages(10, &edges, LONG).stages(), Some(4));
    }

    #[test]
    fn empty_graph_zero_stages() {
        assert_eq!(exact_qaoa_stages(4, &[], LONG).stages(), Some(0));
        assert_eq!(greedy_qaoa_stages(4, &[]), 0);
    }

    #[test]
    fn timeout_reports_gracefully() {
        // Dense graph with a 1ns budget must time out (or solve instantly,
        // which the assertion tolerates by checking the enum only).
        let edges: Vec<(u32, u32)> = (0..12)
            .flat_map(|a| ((a + 1)..12).map(move |b| (a, b)))
            .collect();
        let out = exact_qaoa_stages(12, &edges, Duration::from_nanos(1));
        assert!(matches!(
            out,
            SolverOutcome::Timeout { .. } | SolverOutcome::Optimal { .. }
        ));
    }

    #[test]
    fn greedy_is_within_two_x_of_optimal_on_rings() {
        let ring6: Vec<(u32, u32)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let exact = exact_qaoa_stages(6, &ring6, LONG).stages().unwrap();
        let greedy = greedy_qaoa_stages(6, &ring6);
        assert!(greedy >= exact);
        assert!(greedy <= 2 * exact);
    }

    #[test]
    fn greedy_star_equals_degree() {
        let star: Vec<(u32, u32)> = (1..6).map(|q| (0, q)).collect();
        assert_eq!(greedy_qaoa_stages(6, &star), 5);
    }
}

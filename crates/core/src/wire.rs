//! JSON serialisation of compiled [`Schedule`]s (`qpilot.schedule/v1`).
//!
//! The compilation service caches and ships schedules as JSON; this
//! module provides the writer/parser pair. The format is *canonical*:
//! [`schedule_to_json`] emits no whitespace, fixed key order, and floats
//! in Rust's shortest round-trip decimal form, so
//! `schedule_to_json ∘ schedule_from_json` is the identity on bytes and
//! byte equality of two serialised schedules is schedule equality.
//!
//! Layout:
//!
//! ```json
//! {"format":"qpilot.schedule/v1","num_data":4,"num_ancillas":1,
//!  "aod_rows":2,"aod_cols":2,
//!  "stages":[
//!    {"kind":"raman","gates":[["h",2],["rz",0,0.5]]},
//!    {"kind":"transfer","ops":[[0,1,1,true]]},
//!    {"kind":"move","row_y":[0.5,10],"col_x":[0.5,10]},
//!    {"kind":"rydberg","ops":[[["d",0],["a",0],"cz"]]}
//!  ]}
//! ```
//!
//! Gates use the compact `[mnemonic, operands..., angle?]` encoding (the
//! arity disambiguates; `rzz` carries `[a, b, theta]`), transfer ops are
//! `[ancilla, row, col, load]`, and Rydberg ops are `[atom, atom, kind]`
//! with atoms `["d", qubit]` / `["a", ancilla]` and kind `"cz"`,
//! `["cx", target_b]` or `["zz", theta]`.

use std::fmt;

use qpilot_circuit::{Gate, Qubit};

use crate::json::{self, fmt_f64, Value};
use crate::schedule::{
    AncillaId, AtomRef, RydbergKind, RydbergOp, Schedule, ScheduleBuilder, StageRef, TransferOp,
};

/// The format tag written into and required from every document.
pub const SCHEDULE_FORMAT: &str = "qpilot.schedule/v1";

/// Error from [`schedule_from_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The document is not valid JSON.
    Json(json::JsonError),
    /// The document is JSON but not a `qpilot.schedule/v1` schedule.
    Schema(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "{e}"),
            WireError::Schema(m) => write!(f, "schedule schema error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<json::JsonError> for WireError {
    fn from(e: json::JsonError) -> Self {
        WireError::Json(e)
    }
}

fn schema(m: impl Into<String>) -> WireError {
    WireError::Schema(m.into())
}

/// Serialises a schedule canonically.
///
/// # Panics
///
/// Panics if the schedule contains non-finite floats (no router emits
/// them; the debug validator would reject such a schedule anyway).
pub fn schedule_to_json(schedule: &Schedule) -> String {
    // Pre-size: large schedules (thousands of stages) dominate the
    // service's cold path, so avoid repeated reallocation.
    let mut out = String::with_capacity(64 + schedule.num_stages() * 48);
    out.push_str("{\"format\":\"");
    out.push_str(SCHEDULE_FORMAT);
    out.push_str("\",\"num_data\":");
    out.push_str(&schedule.num_data.to_string());
    out.push_str(",\"num_ancillas\":");
    out.push_str(&schedule.num_ancillas.to_string());
    out.push_str(",\"aod_rows\":");
    out.push_str(&schedule.aod_rows.to_string());
    out.push_str(",\"aod_cols\":");
    out.push_str(&schedule.aod_cols.to_string());
    out.push_str(",\"stages\":[");
    for (i, stage) in schedule.stages().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_stage(&mut out, stage);
    }
    out.push_str("]}");
    out
}

/// Writes one stage in the `qpilot.schedule/v1` encoding (shared with the
/// frozen legacy writer in [`crate::generic_reference`], which serialises
/// the pre-arena layout to the same bytes).
pub(crate) fn write_stage(out: &mut String, stage: StageRef<'_>) {
    match stage {
        StageRef::Raman(gates) => {
            out.push_str("{\"kind\":\"raman\",\"gates\":[");
            for (i, g) in gates.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_gate(out, g);
            }
            out.push_str("]}");
        }
        StageRef::Transfer(ops) => {
            out.push_str("{\"kind\":\"transfer\",\"ops\":[");
            for (i, op) in ops.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&op.ancilla.0.to_string());
                out.push(',');
                out.push_str(&op.row.to_string());
                out.push(',');
                out.push_str(&op.col.to_string());
                out.push(',');
                out.push_str(if op.load { "true" } else { "false" });
                out.push(']');
            }
            out.push_str("]}");
        }
        StageRef::Move { row_y, col_x } => {
            out.push_str("{\"kind\":\"move\",\"row_y\":[");
            for (i, y) in row_y.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&fmt_f64(*y));
            }
            out.push_str("],\"col_x\":[");
            for (i, x) in col_x.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&fmt_f64(*x));
            }
            out.push_str("]}");
        }
        StageRef::Rydberg(ops) => {
            out.push_str("{\"kind\":\"rydberg\",\"ops\":[");
            for (i, op) in ops.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                write_atom(out, op.a);
                out.push(',');
                write_atom(out, op.b);
                out.push(',');
                match op.kind {
                    RydbergKind::Cz => out.push_str("\"cz\""),
                    RydbergKind::CxInto { target_b } => {
                        out.push_str("[\"cx\",");
                        out.push_str(if target_b { "true" } else { "false" });
                        out.push(']');
                    }
                    RydbergKind::Zz(theta) => {
                        out.push_str("[\"zz\",");
                        out.push_str(&fmt_f64(theta));
                        out.push(']');
                    }
                }
                out.push(']');
            }
            out.push_str("]}");
        }
    }
}

fn write_atom(out: &mut String, atom: AtomRef) {
    match atom {
        AtomRef::Data(q) => {
            out.push_str("[\"d\",");
            out.push_str(&q.to_string());
            out.push(']');
        }
        AtomRef::Ancilla(a) => {
            out.push_str("[\"a\",");
            out.push_str(&a.0.to_string());
            out.push(']');
        }
    }
}

/// Serialises one gate in the compact wire encoding (shared with the
/// service protocol's circuit representation).
pub fn write_gate(out: &mut String, g: &Gate) {
    out.push_str("[\"");
    out.push_str(g.mnemonic());
    out.push('"');
    match *g {
        Gate::Rx(q, t) | Gate::Ry(q, t) | Gate::Rz(q, t) => {
            out.push(',');
            out.push_str(&q.raw().to_string());
            out.push(',');
            out.push_str(&fmt_f64(t));
        }
        Gate::Zz(a, b, t) => {
            out.push(',');
            out.push_str(&a.raw().to_string());
            out.push(',');
            out.push_str(&b.raw().to_string());
            out.push(',');
            out.push_str(&fmt_f64(t));
        }
        Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => {
            out.push(',');
            out.push_str(&a.raw().to_string());
            out.push(',');
            out.push_str(&b.raw().to_string());
        }
        _ => {
            let q = g.operands().into_iter().next().expect("1Q operand");
            out.push(',');
            out.push_str(&q.raw().to_string());
        }
    }
    out.push(']');
}

/// Parses one gate from the compact wire encoding.
pub fn gate_from_value(v: &Value) -> Result<Gate, WireError> {
    let items = v.as_arr().ok_or_else(|| schema("gate must be an array"))?;
    let name = items
        .first()
        .and_then(Value::as_str)
        .ok_or_else(|| schema("gate array must start with a mnemonic"))?;
    let qubit = |i: usize| -> Result<Qubit, WireError> {
        items
            .get(i)
            .and_then(Value::as_u32)
            .map(Qubit::new)
            .ok_or_else(|| schema(format!("gate `{name}` operand {i} must be a qubit index")))
    };
    let angle = |i: usize| -> Result<f64, WireError> {
        items
            .get(i)
            .and_then(Value::as_f64)
            // Non-finite angles (JSON `1e999` overflows to inf) must be
            // rejected here: they would route fine and then panic the
            // canonical serialiser — a remote crash vector for the
            // service's worker threads.
            .filter(|t| t.is_finite())
            .ok_or_else(|| schema(format!("gate `{name}` needs a finite angle at {i}")))
    };
    let arity = |n: usize| -> Result<(), WireError> {
        if items.len() != n + 1 {
            return Err(schema(format!(
                "gate `{name}` expects {n} trailing element(s), got {}",
                items.len() - 1
            )));
        }
        Ok(())
    };
    Ok(match name {
        "h" => {
            arity(1)?;
            Gate::H(qubit(1)?)
        }
        "x" => {
            arity(1)?;
            Gate::X(qubit(1)?)
        }
        "y" => {
            arity(1)?;
            Gate::Y(qubit(1)?)
        }
        "z" => {
            arity(1)?;
            Gate::Z(qubit(1)?)
        }
        "s" => {
            arity(1)?;
            Gate::S(qubit(1)?)
        }
        "sdg" => {
            arity(1)?;
            Gate::Sdg(qubit(1)?)
        }
        "t" => {
            arity(1)?;
            Gate::T(qubit(1)?)
        }
        "tdg" => {
            arity(1)?;
            Gate::Tdg(qubit(1)?)
        }
        "rx" => {
            arity(2)?;
            Gate::Rx(qubit(1)?, angle(2)?)
        }
        "ry" => {
            arity(2)?;
            Gate::Ry(qubit(1)?, angle(2)?)
        }
        "rz" => {
            arity(2)?;
            Gate::Rz(qubit(1)?, angle(2)?)
        }
        "cx" => {
            arity(2)?;
            Gate::Cx(qubit(1)?, qubit(2)?)
        }
        "cz" => {
            arity(2)?;
            Gate::Cz(qubit(1)?, qubit(2)?)
        }
        "swap" => {
            arity(2)?;
            Gate::Swap(qubit(1)?, qubit(2)?)
        }
        "rzz" => {
            arity(3)?;
            Gate::Zz(qubit(1)?, qubit(2)?, angle(3)?)
        }
        other => return Err(schema(format!("unknown gate mnemonic `{other}`"))),
    })
}

/// Parses a `qpilot.schedule/v1` document back into a [`Schedule`].
///
/// # Errors
///
/// [`WireError::Json`] on malformed JSON, [`WireError::Schema`] on a
/// missing/incompatible format tag or structural mismatch.
pub fn schedule_from_json(src: &str) -> Result<Schedule, WireError> {
    schedule_from_value(&json::parse(src)?)
}

/// Parses a schedule from an already-parsed JSON value (used by clients
/// that receive the schedule embedded in a response object).
pub fn schedule_from_value(doc: &Value) -> Result<Schedule, WireError> {
    let format = doc
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| schema("missing `format` tag"))?;
    if format != SCHEDULE_FORMAT {
        return Err(schema(format!(
            "format `{format}` is not `{SCHEDULE_FORMAT}`"
        )));
    }
    let field_u32 = |k: &str| -> Result<u32, WireError> {
        doc.get(k)
            .and_then(Value::as_u32)
            .ok_or_else(|| schema(format!("missing integer field `{k}`")))
    };
    let field_usize = |k: &str| -> Result<usize, WireError> {
        doc.get(k)
            .and_then(Value::as_usize)
            .ok_or_else(|| schema(format!("missing integer field `{k}`")))
    };
    let mut builder = ScheduleBuilder::new(
        field_u32("num_data")?,
        field_usize("aod_rows")?,
        field_usize("aod_cols")?,
    );
    builder.set_num_ancillas(field_u32("num_ancillas")?);
    let stages = doc
        .get("stages")
        .and_then(Value::as_arr)
        .ok_or_else(|| schema("missing `stages` array"))?;
    for stage in stages {
        push_stage_from_value(&mut builder, stage)?;
    }
    Ok(builder.finish())
}

fn push_stage_from_value(builder: &mut ScheduleBuilder, v: &Value) -> Result<(), WireError> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| schema("stage needs a `kind`"))?;
    match kind {
        "raman" => {
            let gates = v
                .get("gates")
                .and_then(Value::as_arr)
                .ok_or_else(|| schema("raman stage needs `gates`"))?;
            let layer: Vec<Gate> = gates
                .iter()
                .map(gate_from_value)
                .collect::<Result<_, _>>()?;
            builder.raman(layer);
        }
        "transfer" => {
            let ops = v
                .get("ops")
                .and_then(Value::as_arr)
                .ok_or_else(|| schema("transfer stage needs `ops`"))?;
            let parsed: Vec<TransferOp> =
                ops.iter()
                    .map(|op| {
                        let items = op.as_arr().filter(|a| a.len() == 4).ok_or_else(|| {
                            schema("transfer op must be [ancilla, row, col, load]")
                        })?;
                        Ok(TransferOp {
                            ancilla: AncillaId(
                                items[0]
                                    .as_u32()
                                    .ok_or_else(|| schema("transfer ancilla id"))?,
                            ),
                            row: items[1].as_usize().ok_or_else(|| schema("transfer row"))?,
                            col: items[2].as_usize().ok_or_else(|| schema("transfer col"))?,
                            load: items[3]
                                .as_bool()
                                .ok_or_else(|| schema("transfer load flag"))?,
                        })
                    })
                    .collect::<Result<_, WireError>>()?;
            builder.transfer(parsed);
        }
        "move" => {
            let coords = |k: &str| -> Result<Vec<f64>, WireError> {
                v.get(k)
                    .and_then(Value::as_arr)
                    .ok_or_else(|| schema(format!("move stage needs `{k}`")))?
                    .iter()
                    .map(|x| x.as_f64().ok_or_else(|| schema(format!("{k} entries"))))
                    .collect()
            };
            let (row_y, col_x) = (coords("row_y")?, coords("col_x")?);
            builder.move_stage(&row_y, &col_x);
        }
        "rydberg" => {
            let ops = v
                .get("ops")
                .and_then(Value::as_arr)
                .ok_or_else(|| schema("rydberg stage needs `ops`"))?;
            let parsed: Vec<RydbergOp> = ops
                .iter()
                .map(|op| {
                    let items = op
                        .as_arr()
                        .filter(|a| a.len() == 3)
                        .ok_or_else(|| schema("rydberg op must be [atom, atom, kind]"))?;
                    Ok(RydbergOp {
                        a: atom_from_value(&items[0])?,
                        b: atom_from_value(&items[1])?,
                        kind: kind_from_value(&items[2])?,
                    })
                })
                .collect::<Result<_, WireError>>()?;
            builder.rydberg(parsed);
        }
        other => return Err(schema(format!("unknown stage kind `{other}`"))),
    }
    Ok(())
}

fn atom_from_value(v: &Value) -> Result<AtomRef, WireError> {
    let items = v
        .as_arr()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| schema("atom must be [tag, index]"))?;
    let idx = items[1]
        .as_u32()
        .ok_or_else(|| schema("atom index must be a u32"))?;
    match items[0].as_str() {
        Some("d") => Ok(AtomRef::Data(idx)),
        Some("a") => Ok(AtomRef::Ancilla(AncillaId(idx))),
        _ => Err(schema("atom tag must be \"d\" or \"a\"")),
    }
}

fn kind_from_value(v: &Value) -> Result<RydbergKind, WireError> {
    if v.as_str() == Some("cz") {
        return Ok(RydbergKind::Cz);
    }
    let items = v
        .as_arr()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| schema("rydberg kind must be \"cz\", [\"cx\",b] or [\"zz\",t]"))?;
    match items[0].as_str() {
        Some("cx") => Ok(RydbergKind::CxInto {
            target_b: items[1].as_bool().ok_or_else(|| schema("cx target flag"))?,
        }),
        Some("zz") => Ok(RydbergKind::Zz(
            items[1]
                .as_f64()
                .filter(|t| t.is_finite())
                .ok_or_else(|| schema("zz angle must be finite"))?,
        )),
        _ => Err(schema("unknown rydberg kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schedule() -> Schedule {
        let mut b = ScheduleBuilder::new(3, 2, 2);
        let a = b.fresh_ancilla();
        b.transfer([TransferOp {
            ancilla: a,
            row: 0,
            col: 1,
            load: true,
        }]);
        b.move_stage(&[0.5, 10.0], &[1.85, 11.85]);
        b.raman([Gate::H(Qubit::new(3)), Gate::Rz(Qubit::new(0), -0.25)]);
        b.rydberg([
            RydbergOp::cz(AtomRef::Data(0), AtomRef::Ancilla(a)),
            RydbergOp::cx(AtomRef::Ancilla(a), AtomRef::Data(2)),
            RydbergOp::zz(AtomRef::Data(1), AtomRef::Data(2), 0.7),
        ]);
        b.transfer([TransferOp {
            ancilla: a,
            row: 0,
            col: 1,
            load: false,
        }]);
        b.finish()
    }

    #[test]
    fn round_trip_preserves_schedule() {
        let s = sample_schedule();
        let json = schedule_to_json(&s);
        let back = schedule_from_json(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn serialisation_is_canonical() {
        let s = sample_schedule();
        let once = schedule_to_json(&s);
        let twice = schedule_to_json(&schedule_from_json(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn format_tag_is_checked() {
        let mut doc = schedule_to_json(&sample_schedule());
        doc = doc.replace("qpilot.schedule/v1", "qpilot.schedule/v9");
        assert!(matches!(
            schedule_from_json(&doc),
            Err(WireError::Schema(_))
        ));
    }

    #[test]
    fn malformed_json_reports_json_error() {
        assert!(matches!(
            schedule_from_json("{\"format\":"),
            Err(WireError::Json(_))
        ));
    }

    #[test]
    fn all_gate_kinds_round_trip() {
        let gates = vec![
            Gate::H(Qubit::new(0)),
            Gate::X(Qubit::new(1)),
            Gate::Y(Qubit::new(2)),
            Gate::Z(Qubit::new(0)),
            Gate::S(Qubit::new(1)),
            Gate::Sdg(Qubit::new(2)),
            Gate::T(Qubit::new(0)),
            Gate::Tdg(Qubit::new(1)),
            Gate::Rx(Qubit::new(0), 0.1),
            Gate::Ry(Qubit::new(1), -0.2),
            Gate::Rz(Qubit::new(2), 1e-9),
            Gate::Cx(Qubit::new(0), Qubit::new(1)),
            Gate::Cz(Qubit::new(1), Qubit::new(2)),
            Gate::Zz(Qubit::new(0), Qubit::new(2), 2.5),
            Gate::Swap(Qubit::new(1), Qubit::new(0)),
        ];
        for g in gates {
            let mut out = String::new();
            write_gate(&mut out, &g);
            let v = json::parse(&out).unwrap();
            assert_eq!(gate_from_value(&v).unwrap(), g, "gate {g}");
        }
    }

    #[test]
    fn schema_errors_name_the_problem() {
        let bad = r#"{"format":"qpilot.schedule/v1","num_data":1,"num_ancillas":0,"aod_rows":1,"aod_cols":1,"stages":[{"kind":"warp"}]}"#;
        match schedule_from_json(bad) {
            Err(WireError::Schema(m)) => assert!(m.contains("warp")),
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn empty_schedule_round_trips() {
        let s = Schedule::new(1, 1, 1);
        assert_eq!(schedule_from_json(&schedule_to_json(&s)).unwrap(), s);
    }
}

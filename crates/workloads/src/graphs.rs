//! Graph workloads for QAOA (Fig. 13, Table 2).
//!
//! The paper uses Erdős–Rényi random graphs (edge probability 0.1–0.5) and
//! random 3-/4-regular graphs, all compiled as Max-Cut QAOA circuits: one
//! `ZZ(γ)` per edge plus mixer layers.

use qpilot_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected simple graph over `n` vertices, the input to the QAOA
/// router.
///
/// # Example
///
/// ```
/// use qpilot_workloads::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: u32,
    edges: Vec<(u32, u32)>,
}

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Edge endpoint at or beyond the vertex count.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: u32,
        /// The vertex count.
        num_vertices: u32,
    },
    /// Self loop.
    SelfLoop {
        /// The looping vertex.
        vertex: u32,
    },
    /// The same edge appeared twice.
    DuplicateEdge {
        /// The duplicated edge (normalised).
        edge: (u32, u32),
    },
    /// A regular graph with the requested parameters does not exist or the
    /// sampler failed to find one.
    RegularGraphInfeasible {
        /// Vertex count requested.
        num_vertices: u32,
        /// Degree requested.
        degree: u32,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range for {num_vertices} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self loop on vertex {vertex}"),
            GraphError::DuplicateEdge { edge } => {
                write!(f, "duplicate edge ({}, {})", edge.0, edge.1)
            }
            GraphError::RegularGraphInfeasible {
                num_vertices,
                degree,
            } => {
                write!(f, "no {degree}-regular graph on {num_vertices} vertices")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Builds a graph, normalising each edge to `(min, max)`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range endpoints, self-loops and duplicate edges.
    pub fn from_edges(
        num_vertices: u32,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Self, GraphError> {
        let mut normalized: Vec<(u32, u32)> = Vec::new();
        for (a, b) in edges {
            if a == b {
                return Err(GraphError::SelfLoop { vertex: a });
            }
            for v in [a, b] {
                if v >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: v,
                        num_vertices,
                    });
                }
            }
            let e = (a.min(b), a.max(b));
            if normalized.contains(&e) {
                return Err(GraphError::DuplicateEdge { edge: e });
            }
            normalized.push(e);
        }
        Ok(Graph {
            num_vertices,
            edges: normalized,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The normalised edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == v || b == v)
            .count()
    }

    /// Builds the depth-`p` Max-Cut QAOA circuit: `H` on every qubit, then
    /// `p` rounds of `ZZ(γ_k)` per edge followed by `Rx(β_k)` mixers.
    ///
    /// # Panics
    ///
    /// Panics if `gammas.len() != betas.len()`.
    pub fn qaoa_circuit(&self, gammas: &[f64], betas: &[f64]) -> Circuit {
        assert_eq!(gammas.len(), betas.len(), "gamma/beta length mismatch");
        let n = self.num_vertices;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            for &(a, b) in &self.edges {
                c.zz(a, b, gamma);
            }
            for q in 0..n {
                c.rx(q, beta);
            }
        }
        c
    }

    /// Single-round QAOA circuit with standard angles, the shape the paper
    /// compiles.
    pub fn qaoa_circuit_p1(&self) -> Circuit {
        self.qaoa_circuit(&[0.7], &[0.3])
    }
}

/// Erdős–Rényi graph: each pair is an edge independently with probability
/// `p`. Deterministic in `seed`.
///
/// # Panics
///
/// Panics unless `p ∈ [0, 1]`.
pub fn erdos_renyi(num_vertices: u32, p: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..num_vertices {
        for b in (a + 1)..num_vertices {
            if rng.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    Graph {
        num_vertices,
        edges,
    }
}

/// Random `d`-regular graph via the configuration model with restarts.
/// Deterministic in `seed`.
///
/// # Errors
///
/// Returns [`GraphError::RegularGraphInfeasible`] if `n·d` is odd, `d ≥ n`,
/// or sampling fails repeatedly (astronomically unlikely for feasible
/// parameters).
pub fn random_regular(num_vertices: u32, degree: u32, seed: u64) -> Result<Graph, GraphError> {
    let infeasible = GraphError::RegularGraphInfeasible {
        num_vertices,
        degree,
    };
    if degree >= num_vertices || (num_vertices as u64 * degree as u64) % 2 == 1 {
        return Err(infeasible);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    'restart: for _ in 0..1000 {
        // Stub list: vertex v appears `degree` times.
        let mut stubs: Vec<u32> = (0..num_vertices)
            .flat_map(|v| std::iter::repeat_n(v, degree as usize))
            .collect();
        // Fisher-Yates shuffle.
        for i in (1..stubs.len()).rev() {
            stubs.swap(i, rng.gen_range(0..=i));
        }
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(stubs.len() / 2);
        for pair in stubs.chunks_exact(2) {
            let e = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if e.0 == e.1 || edges.contains(&e) {
                continue 'restart;
            }
            edges.push(e);
        }
        return Ok(Graph {
            num_vertices,
            edges,
        });
    }
    Err(infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_normalises() {
        let g = Graph::from_edges(3, [(2, 0), (1, 2)]).unwrap();
        assert_eq!(g.edges(), &[(0, 2), (1, 2)]);
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Graph::from_edges(2, [(0, 0)]),
            Err(GraphError::SelfLoop { vertex: 0 })
        ));
        assert!(matches!(
            Graph::from_edges(2, [(0, 2)]),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
        assert!(matches!(
            Graph::from_edges(3, [(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { edge: (0, 1) })
        ));
    }

    #[test]
    fn erdos_renyi_edge_count_tracks_p() {
        let g = erdos_renyi(50, 0.3, 7);
        let possible = 50 * 49 / 2;
        let expected = possible as f64 * 0.3;
        assert!((g.num_edges() as f64 - expected).abs() < expected * 0.3);
    }

    #[test]
    fn erdos_renyi_deterministic() {
        assert_eq!(erdos_renyi(20, 0.5, 3), erdos_renyi(20, 0.5, 3));
        assert_ne!(erdos_renyi(20, 0.5, 3), erdos_renyi(20, 0.5, 4));
    }

    #[test]
    fn regular_graph_has_uniform_degree() {
        for d in [3u32, 4] {
            let g = random_regular(20, d, 11).unwrap();
            for v in 0..20 {
                assert_eq!(g.degree(v), d as usize, "vertex {v}");
            }
            assert_eq!(g.num_edges(), 20 * d as usize / 2);
        }
    }

    #[test]
    fn regular_graph_infeasible_cases() {
        assert!(random_regular(5, 3, 0).is_err()); // n*d odd
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
    }

    #[test]
    fn regular_graph_deterministic() {
        assert_eq!(random_regular(10, 3, 5), random_regular(10, 3, 5));
    }

    #[test]
    fn qaoa_circuit_structure() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let c = g.qaoa_circuit(&[0.5, 0.6], &[0.1, 0.2]);
        // 4 H + 2 rounds x (2 ZZ + 4 RX) = 4 + 12 = 16 gates.
        assert_eq!(c.len(), 16);
        assert_eq!(c.two_qubit_count(), 4);
    }

    #[test]
    fn qaoa_p1_has_one_zz_per_edge() {
        let g = erdos_renyi(10, 0.4, 2);
        let c = g.qaoa_circuit_p1();
        assert_eq!(c.two_qubit_count(), g.num_edges());
    }
}

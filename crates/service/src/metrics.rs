//! Service-level metrics and the Prometheus wire surface.
//!
//! The histograms here cover the serving tier: end-to-end request
//! latency labelled by serving path, and the service-side pipeline
//! spans (`parse`, `fingerprint`, `cache_probe`, `store_write`). The
//! router stage histograms live in [`qpilot_core::obs::ROUTE_STAGES`];
//! [`render_exposition`] walks both registries plus the service
//! counters and renders Prometheus **text exposition format v0.0.4** —
//! the exact bytes served by the `metrics` protocol op and by
//! `qpilotd --metrics-listen ADDR` over plain HTTP GET.
//!
//! Latency metrics are rendered as Prometheus *summaries* (p50/p90/p99
//! quantiles plus `_sum`/`_count`) with values in seconds. Line order is
//! deterministic — the golden tests in this module depend on it, and so
//! may downstream scrape diffing.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};

use qpilot_core::json::fmt_f64;
use qpilot_core::obs::{Histogram, HistogramSnapshot, ROUTE_STAGES};

use crate::pool::{Service, ServiceStats};

/// Request latency, served from cache (`path="hit"`).
pub static REQUEST_HIT: Histogram = Histogram::new();
/// Request latency, compiled as leader (`path="miss"`).
pub static REQUEST_MISS: Histogram = Histogram::new();
/// Request latency, attached to an in-flight compile
/// (`path="coalesced"`).
pub static REQUEST_COALESCED: Histogram = Histogram::new();
/// Request latency, answered by a winning hedge compile
/// (`path="hedged"`).
pub static REQUEST_HEDGED: Histogram = Histogram::new();
/// Request latency, shed with `Overloaded` (`path="shed"`).
pub static REQUEST_SHED: Histogram = Histogram::new();
/// Request latency, any other failure (`path="error"`).
pub static REQUEST_ERROR: Histogram = Histogram::new();

/// Every request-latency series, in exposition order.
pub static REQUEST_PATHS: [(&str, &Histogram); 6] = [
    ("hit", &REQUEST_HIT),
    ("miss", &REQUEST_MISS),
    ("coalesced", &REQUEST_COALESCED),
    ("hedged", &REQUEST_HEDGED),
    ("shed", &REQUEST_SHED),
    ("error", &REQUEST_ERROR),
];

/// Time spent parsing a protocol line into a request.
pub static STAGE_PARSE: Histogram = Histogram::new();
/// Time spent computing the content fingerprint.
pub static STAGE_FINGERPRINT: Histogram = Histogram::new();
/// Time spent probing the schedule cache.
pub static STAGE_CACHE_PROBE: Histogram = Histogram::new();
/// Time spent persisting a compiled schedule to the store.
pub static STAGE_STORE_WRITE: Histogram = Histogram::new();

/// Every service-side pipeline span, in exposition order.
pub static SERVICE_STAGES: [(&str, &Histogram); 4] = [
    ("parse", &STAGE_PARSE),
    ("fingerprint", &STAGE_FINGERPRINT),
    ("cache_probe", &STAGE_CACHE_PROBE),
    ("store_write", &STAGE_STORE_WRITE),
];

/// The request-latency histogram for a serving path name (as rendered
/// in replies); unknown paths map to the `error` series.
pub fn request_histogram(path: &str) -> &'static Histogram {
    for (name, h) in REQUEST_PATHS {
        if name == path {
            return h;
        }
    }
    &REQUEST_ERROR
}

const NS: f64 = 1e-9;

fn seconds(ns: u64) -> String {
    fmt_f64(ns as f64 * NS)
}

fn push_counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

fn push_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

fn push_summary_series(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let (open, sep) = if labels.is_empty() {
        (String::new(), String::new())
    } else {
        (format!("{{{labels}}}"), format!("{{{labels},"))
    };
    // A series that has never recorded a sample has no percentiles; a
    // fabricated `0` quantile would both mislead dashboards and (until
    // the fleet merge learned to skip them) pin the fleet-wide max. The
    // `_sum`/`_count` pair is still emitted so the series stays
    // discoverable and scrape-to-scrape stable.
    if snap.count() > 0 {
        for (q, v) in [
            ("0.5", snap.percentile(0.50)),
            ("0.9", snap.percentile(0.90)),
            ("0.99", snap.percentile(0.99)),
        ] {
            if labels.is_empty() {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", seconds(v)));
            } else {
                out.push_str(&format!("{name}{sep}quantile=\"{q}\"}} {}\n", seconds(v)));
            }
        }
    }
    out.push_str(&format!("{name}_sum{open} {}\n", seconds(snap.sum_ns())));
    out.push_str(&format!("{name}_count{open} {}\n", snap.count()));
}

fn push_summary_header(out: &mut String, name: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
}

/// Renders the full Prometheus text exposition (format v0.0.4) for a
/// service: counters and gauges from [`ServiceStats`], the compile
/// latency summary, request latency by serving path, service pipeline
/// spans, and one summary series per router stage from
/// [`qpilot_core::obs::ROUTE_STAGES`]. Line order is deterministic.
pub fn render_exposition(service: &Service) -> String {
    let stats = service.stats();
    let compile = service.compile_latency_snapshot();
    render_exposition_parts(&stats, &compile)
}

/// [`render_exposition`] over pre-snapshotted parts (testable without a
/// live worker pool).
pub fn render_exposition_parts(stats: &ServiceStats, compile: &HistogramSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    push_counter(
        &mut out,
        "qpilot_requests_total",
        "Compile requests handled (hits + misses).",
        stats.requests,
    );
    push_counter(
        &mut out,
        "qpilot_compiles_total",
        "Compilations executed by the worker pool.",
        stats.compiles,
    );
    push_counter(
        &mut out,
        "qpilot_cache_hits_total",
        "Requests served from the schedule cache.",
        stats.cache.hits,
    );
    push_counter(
        &mut out,
        "qpilot_cache_misses_total",
        "Requests that missed the schedule cache.",
        stats.cache.misses,
    );
    push_counter(
        &mut out,
        "qpilot_coalesced_total",
        "Requests attached to an in-flight identical compile.",
        stats.coalesced,
    );
    push_counter(
        &mut out,
        "qpilot_hedged_total",
        "Hedge compiles launched after a leader timeout.",
        stats.hedged,
    );
    push_counter(
        &mut out,
        "qpilot_leader_timeouts_total",
        "Coalesced-waiter leader timeouts fired.",
        stats.leader_timeouts,
    );
    push_counter(
        &mut out,
        "qpilot_shed_total",
        "Requests shed with Overloaded by the degradation ladder.",
        stats.shed,
    );
    push_counter(
        &mut out,
        "qpilot_deadline_misses_total",
        "Requests that missed their effective deadline.",
        stats.deadline_misses,
    );
    push_counter(
        &mut out,
        "qpilot_store_persisted_total",
        "Schedules spilled to the persistent store.",
        stats.store_persisted,
    );
    push_gauge(
        &mut out,
        "qpilot_cache_entries",
        "Currently cached schedules.",
        stats.cache_entries as u64,
    );
    push_gauge(
        &mut out,
        "qpilot_cache_bytes",
        "Resident bytes of cached schedule JSON.",
        stats.cache_bytes,
    );
    push_gauge(
        &mut out,
        "qpilot_workers",
        "Compilation worker threads.",
        stats.workers as u64,
    );

    push_summary_header(
        &mut out,
        "qpilot_compile_seconds",
        "Compile wall-clock per executed compilation.",
    );
    push_summary_series(&mut out, "qpilot_compile_seconds", "", compile);

    push_summary_header(
        &mut out,
        "qpilot_request_seconds",
        "End-to-end request latency by serving path.",
    );
    for (path, h) in REQUEST_PATHS {
        push_summary_series(
            &mut out,
            "qpilot_request_seconds",
            &format!("path=\"{path}\""),
            &h.snapshot(),
        );
    }

    push_summary_header(
        &mut out,
        "qpilot_service_stage_seconds",
        "Service pipeline span latency by stage.",
    );
    for (stage, h) in SERVICE_STAGES {
        push_summary_series(
            &mut out,
            "qpilot_service_stage_seconds",
            &format!("stage=\"{stage}\""),
            &h.snapshot(),
        );
    }

    push_summary_header(
        &mut out,
        "qpilot_route_stage_seconds",
        "Router stage time per route call, by router and stage.",
    );
    for s in &ROUTE_STAGES {
        push_summary_series(
            &mut out,
            "qpilot_route_stage_seconds",
            &format!("router=\"{}\",stage=\"{}\"", s.router, s.stage),
            &s.histogram.snapshot(),
        );
    }
    out
}

/// The Content-Type for the exposition bytes, on both wire surfaces.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Binds `addr` and serves the exposition over plain HTTP GET on a
/// background thread (any path, `Connection: close`; the thread runs
/// for the life of the process). Returns the bound address so the
/// caller can print a readiness line.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_http(addr: &str, service: Service) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(
        addr.to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("metrics address resolved to nothing"))?,
    )?;
    let local = listener.local_addr()?;
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let service = service.clone();
            // One short-lived thread per scrape: scrapes are rare and
            // the handler must never block the accept loop.
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream);
                // Drain the request head; the reply is the same for
                // every path.
                let mut line = String::new();
                while reader.read_line(&mut line).is_ok() {
                    if line == "\r\n" || line == "\n" || line.is_empty() {
                        break;
                    }
                    line.clear();
                }
                let body = render_exposition(&service);
                let head = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: {EXPOSITION_CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                let mut stream = reader.into_inner();
                let _ = stream.write_all(head.as_bytes());
                let _ = stream.write_all(body.as_bytes());
                let _ = stream.flush();
            });
        }
    });
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpilot_core::obs::Histogram;

    fn zero_stats() -> ServiceStats {
        ServiceStats {
            requests: 3,
            cache: crate::cache::CacheCounters {
                hits: 1,
                misses: 2,
                ..Default::default()
            },
            cache_entries: 2,
            cache_bytes: 512,
            compiles: 2,
            coalesced: 0,
            hedged: 0,
            leader_timeouts: 0,
            shed: 0,
            deadline_misses: 0,
            draining: false,
            store_persisted: 0,
            store_loaded: 0,
            p50_compile_s: 0.001,
            p90_compile_s: 0.002,
            p99_compile_s: 0.003,
            workers: 2,
        }
    }

    /// Golden test: the exposition is line-order-stable and well formed.
    /// (Uses only pre-snapshotted parts, so concurrent tests recording
    /// into the global histograms cannot perturb it.)
    #[test]
    fn exposition_head_is_golden() {
        let compile = Histogram::new();
        compile.record_ns(1_000_000);
        let text = render_exposition_parts(&zero_stats(), &compile.snapshot());
        let expected_head = "\
# HELP qpilot_requests_total Compile requests handled (hits + misses).
# TYPE qpilot_requests_total counter
qpilot_requests_total 3
# HELP qpilot_compiles_total Compilations executed by the worker pool.
# TYPE qpilot_compiles_total counter
qpilot_compiles_total 2
# HELP qpilot_cache_hits_total Requests served from the schedule cache.
# TYPE qpilot_cache_hits_total counter
qpilot_cache_hits_total 1
";
        assert!(
            text.starts_with(expected_head),
            "exposition head drifted:\n{}",
            &text[..expected_head.len().min(text.len())]
        );
        // The compile summary reports the recorded millisecond sample.
        assert!(text.contains("# TYPE qpilot_compile_seconds summary"));
        assert!(text.contains("qpilot_compile_seconds_count 1"));
        // Every quantile line parses as a float in seconds.
        for line in text.lines() {
            if line.starts_with("qpilot_compile_seconds{quantile=") {
                let v: f64 = line.split(' ').next_back().unwrap().parse().unwrap();
                assert!((0.0005..0.0015).contains(&v), "quantile {v}");
            }
        }
    }

    /// The full render is identical across calls on identical inputs
    /// (line-order stability, satellite requirement).
    #[test]
    fn exposition_is_deterministic() {
        let compile = Histogram::new();
        compile.record_ns(42_000);
        let snap = compile.snapshot();
        let stats = zero_stats();
        assert_eq!(
            render_exposition_parts(&stats, &snap),
            render_exposition_parts(&stats, &snap)
        );
    }

    /// Every router/stage pair from the core registry appears as a
    /// labelled series.
    #[test]
    fn exposition_covers_every_route_stage() {
        let text = render_exposition_parts(&zero_stats(), &Histogram::new().snapshot());
        for s in &qpilot_core::obs::ROUTE_STAGES {
            let label = format!(
                "qpilot_route_stage_seconds_count{{router=\"{}\",stage=\"{}\"}}",
                s.router, s.stage
            );
            assert!(text.contains(&label), "missing series {label}");
        }
        for (stage, _) in SERVICE_STAGES {
            assert!(text.contains(&format!("stage=\"{stage}\"")));
        }
        for (path, _) in REQUEST_PATHS {
            assert!(text.contains(&format!("path=\"{path}\"")));
        }
    }

    /// A series with zero samples emits no quantile rows (there is no
    /// percentile of nothing) but keeps `_sum`/`_count` so the series
    /// set is stable scrape-to-scrape.
    #[test]
    fn empty_series_emit_no_quantile_rows() {
        let empty = Histogram::new();
        let mut out = String::new();
        push_summary_series(
            &mut out,
            "qpilot_test_seconds",
            "path=\"idle\"",
            &empty.snapshot(),
        );
        assert!(!out.contains("quantile"), "{out}");
        assert!(
            out.contains("qpilot_test_seconds_sum{path=\"idle\"} 0"),
            "{out}"
        );
        assert!(
            out.contains("qpilot_test_seconds_count{path=\"idle\"} 0"),
            "{out}"
        );

        let live = Histogram::new();
        live.record_ns(2_000_000);
        let mut out = String::new();
        push_summary_series(
            &mut out,
            "qpilot_test_seconds",
            "path=\"hit\"",
            &live.snapshot(),
        );
        assert!(out.contains("quantile=\"0.99\""), "{out}");
    }

    #[test]
    fn request_histogram_maps_paths() {
        assert!(std::ptr::eq(request_histogram("hit"), &REQUEST_HIT));
        assert!(std::ptr::eq(request_histogram("shed"), &REQUEST_SHED));
        assert!(std::ptr::eq(request_histogram("nonsense"), &REQUEST_ERROR));
    }
}

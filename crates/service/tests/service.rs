//! End-to-end service tests: a real `TcpServer` on a loopback port, the
//! wire protocol over actual sockets, QASM-carried workloads, and
//! backpressure behaviour.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use qpilot_circuit::Circuit;
use qpilot_core::json::{self, json_str, Value};
use qpilot_core::wire::schedule_from_value;
use qpilot_service::protocol::{circuit_to_value_json, compile_request_line};
use qpilot_service::{CompileRequest, Service, ServiceConfig, TcpServer};
use qpilot_workloads::bv::bernstein_vazirani_random;
use qpilot_workloads::graphs::erdos_renyi;
use qpilot_workloads::random::{random_circuit, RandomCircuitConfig};

fn test_service(workers: usize, queue: usize) -> Service {
    Service::new(ServiceConfig {
        workers,
        queue_capacity: queue,
        cache_capacity: 64,
        cache_shards: 4,
        ..ServiceConfig::default()
    })
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test daemon");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Value {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
        self.writer.flush().expect("flush request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        json::parse(response.trim_end()).expect("valid response json")
    }
}

/// The workload generators the service integration suite exercises,
/// shipped over the wire as QASM (each also round-trips through
/// `circuit::qasm` by construction of the protocol path).
fn workload_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        (
            "random",
            random_circuit(&RandomCircuitConfig::paper(9, 3, 7)),
        ),
        ("bv", bernstein_vazirani_random(8, 3)),
        ("qaoa", erdos_renyi(9, 0.4, 5).qaoa_circuit_p1()),
    ]
}

#[test]
fn tcp_compile_twice_hits_cache_with_byte_identical_schedule() {
    let server = TcpServer::spawn(test_service(2, 8), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr());

    let circuit = random_circuit(&RandomCircuitConfig::paper(8, 3, 1));
    let line = compile_request_line(&circuit_to_value_json(&circuit), None, None, None, true);

    let first = client.request(&line);
    assert_eq!(first.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(first.get("cache").and_then(Value::as_str), Some("miss"));

    // Same request from a *different* connection must hit.
    let mut other = Client::connect(server.local_addr());
    let second = other.request(&line);
    assert_eq!(second.get("cache").and_then(Value::as_str), Some("hit"));
    assert_eq!(
        first.get("fingerprint").and_then(Value::as_str),
        second.get("fingerprint").and_then(Value::as_str)
    );
    // Byte-identical schedules (canonical serialisation makes this a
    // meaningful comparison).
    assert_eq!(
        first.get("schedule").map(Value::to_json),
        second.get("schedule").map(Value::to_json)
    );

    let stats = client.request("{\"op\":\"stats\"}");
    assert_eq!(stats.get("hits").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("compiles").and_then(Value::as_u64), Some(1));

    server.shutdown();
}

#[test]
fn workloads_compile_identically_via_qasm_and_inline_circuit() {
    let server = TcpServer::spawn(test_service(2, 8), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr());

    for (name, circuit) in workload_circuits() {
        // The QAOA workload contains `rzz`, which QASM export expands to
        // cx/rz/cx — send the *parsed* equivalent inline so both paths
        // describe the same gate list (the expansion happens client-side
        // exactly once, mirroring what any QASM-speaking client sees).
        let canonical = Circuit::from_qasm(&circuit.to_qasm())
            .unwrap_or_else(|e| panic!("{name}: qasm round trip failed: {e}"));
        let via_qasm = format!(
            "{{\"op\":\"compile\",\"qasm\":{}}}",
            json_str(&circuit.to_qasm())
        );
        let via_inline =
            compile_request_line(&circuit_to_value_json(&canonical), None, None, None, true);

        let qasm_response = client.request(&via_qasm);
        assert_eq!(
            qasm_response.get("ok"),
            Some(&Value::Bool(true)),
            "{name}: {qasm_response:?}"
        );
        let inline_response = client.request(&via_inline);
        // Identical fingerprints: the QASM path and the inline path are
        // the same request, so the second is a cache hit.
        assert_eq!(
            qasm_response.get("fingerprint").and_then(Value::as_str),
            inline_response.get("fingerprint").and_then(Value::as_str),
            "{name}: qasm/inline fingerprints diverge"
        );
        assert_eq!(
            inline_response.get("cache").and_then(Value::as_str),
            Some("hit"),
            "{name}"
        );
        // The schedule parses back into a well-formed Schedule.
        let schedule = schedule_from_value(qasm_response.get("schedule").expect("schedule body"))
            .unwrap_or_else(|e| panic!("{name}: schedule parse failed: {e}"));
        assert_eq!(schedule.num_data, canonical.num_qubits());
    }
    server.shutdown();
}

#[test]
fn racing_tcp_clients_on_one_cold_fingerprint_compile_exactly_once() {
    let server = TcpServer::spawn(test_service(4, 8), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let circuit = random_circuit(&RandomCircuitConfig::paper(12, 4, 4321));
                let line =
                    compile_request_line(&circuit_to_value_json(&circuit), None, None, None, true);
                barrier.wait();
                let response = client.request(&line);
                assert_eq!(response.get("ok"), Some(&Value::Bool(true)), "{response:?}");
                (
                    response
                        .get("cache")
                        .and_then(Value::as_str)
                        .unwrap()
                        .to_string(),
                    response.get("schedule").map(Value::to_json).unwrap(),
                )
            })
        })
        .collect();
    let results: Vec<(String, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Exactly one miss (the leader's compile); the rest coalesced onto it
    // or hit the cache just after the insert. All bytes identical.
    let misses = results.iter().filter(|(c, _)| c == "miss").count();
    assert_eq!(
        misses,
        1,
        "cache outcomes: {:?}",
        results.iter().map(|(c, _)| c).collect::<Vec<_>>()
    );
    for (_, schedule) in &results {
        assert_eq!(schedule, &results[0].1, "racing responses diverged");
    }
    let mut client = Client::connect(addr);
    let stats = client.request("{\"op\":\"stats\"}");
    assert_eq!(
        stats.get("compiles").and_then(Value::as_u64),
        Some(1),
        "exactly one compile ran: {stats:?}"
    );
    // Request-level accounting still balances: every request probed the
    // cache exactly once, whether it led, coalesced, or hit.
    let hits = stats.get("hits").and_then(Value::as_u64).unwrap();
    let misses = stats.get("misses").and_then(Value::as_u64).unwrap();
    assert_eq!(hits + misses, 8, "{stats:?}");
    let coalesced = stats.get("coalesced").and_then(Value::as_u64).unwrap();
    assert!(coalesced < 8, "{stats:?}");
    server.shutdown();
}

#[test]
fn concurrent_burst_with_tiny_queue_loses_no_request() {
    // 1 worker, queue depth 2: the 16-client burst is absorbed by a mix
    // of coalescing and `Overloaded` shedding. Every rejection must
    // carry a machine-readable `retry_after_ms` hint, and a client that
    // honours it always lands.
    let server = TcpServer::spawn(test_service(1, 2), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                // Half the clients share a circuit (cache hits), half are
                // distinct (cache misses through the queue).
                let seed = if i % 2 == 0 { 1000 } else { i };
                let circuit = random_circuit(&RandomCircuitConfig::paper(6, 2, seed));
                let line =
                    compile_request_line(&circuit_to_value_json(&circuit), None, None, None, false);
                for _attempt in 0..100 {
                    let response = client.request(&line);
                    if response.get("ok") == Some(&Value::Bool(true)) {
                        return;
                    }
                    assert_eq!(
                        response.get("retry"),
                        Some(&Value::Bool(true)),
                        "only retryable rejections allowed: {response:?}"
                    );
                    let hint = response
                        .get("retry_after_ms")
                        .and_then(Value::as_u64)
                        .expect("overload rejection carries a backoff hint");
                    std::thread::sleep(std::time::Duration::from_millis(hint.min(50)));
                }
                panic!("request never served despite honouring backoff hints");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("burst client");
    }
    let mut client = Client::connect(addr);
    let stats = client.request("{\"op\":\"stats\"}");
    assert!(
        stats.get("requests").and_then(Value::as_u64) >= Some(16),
        "all requests reached the service: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn in_process_api_matches_wire_results() {
    let service = test_service(1, 4);
    let circuit = bernstein_vazirani_random(6, 9);
    let api = service
        .compile(CompileRequest::new(circuit.clone()))
        .expect("api compile");

    let server = TcpServer::spawn(service, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr());
    let line = compile_request_line(&circuit_to_value_json(&circuit), None, None, None, true);
    let wire = client.request(&line);
    assert_eq!(wire.get("cache").and_then(Value::as_str), Some("hit"));
    assert_eq!(
        wire.get("fingerprint").and_then(Value::as_str),
        Some(api.fingerprint.to_string().as_str())
    );
    assert_eq!(
        wire.get("schedule").map(Value::to_json).expect("schedule"),
        api.entry.schedule_json.as_ref()
    );
    server.shutdown();
}

/// The contract CI's service smoke depends on: `qpilotd --listen
/// 127.0.0.1:0` binds an ephemeral port and prints the *actual* bound
/// address in its readiness line, which scripts parse back instead of
/// assuming a fixed (collision-prone) port.
#[test]
fn daemon_binary_announces_ephemeral_port_and_serves() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_qpilotd"))
        .args(["--listen", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn qpilotd");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut ready = String::new();
    stdout.read_line(&mut ready).expect("readiness line");
    let addr: std::net::SocketAddr = ready
        .trim()
        .strip_prefix("qpilotd listening on ")
        .unwrap_or_else(|| panic!("unexpected readiness line: {ready:?}"))
        .parse()
        .expect("readiness line carries the bound address");
    assert_ne!(addr.port(), 0, "daemon must announce the real port");

    let mut client = Client::connect(addr);
    let pong = client.request("{\"op\":\"ping\"}");
    assert_eq!(pong.get("op").and_then(Value::as_str), Some("pong"));
    let bye = client.request("{\"op\":\"shutdown\"}");
    assert_eq!(bye.get("ok"), Some(&Value::Bool(true)));

    let status = child.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon exit status: {status:?}");
}

#[test]
fn malformed_lines_do_not_poison_the_connection() {
    let server = TcpServer::spawn(test_service(1, 4), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr());
    let bad = client.request("{\"op\":\"compile\"}");
    assert_eq!(bad.get("ok"), Some(&Value::Bool(false)));
    let good = client.request("{\"op\":\"ping\"}");
    assert_eq!(good.get("op").and_then(Value::as_str), Some("pong"));
    server.shutdown();
}

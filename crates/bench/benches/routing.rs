//! Criterion benchmarks of Q-Pilot's routers: compile-time throughput on
//! the paper's workload families (the basis of Table 2's runtime rows and
//! the §4.3 scalability study).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qpilot_core::generic::GenericRouter;
use qpilot_core::qaoa::QaoaRouter;
use qpilot_core::qsim::QsimRouter;
use qpilot_core::FpqaConfig;
use qpilot_workloads::graphs::random_regular;
use qpilot_workloads::pauli::{random_pauli_strings, PauliWorkloadConfig};
use qpilot_workloads::random::{random_circuit, RandomCircuitConfig};

fn bench_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("generic_router");
    group.sample_size(10);
    for &n in &[20u32, 50, 100] {
        let circuit = random_circuit(&RandomCircuitConfig::paper(n, 5, 1));
        let cfg = FpqaConfig::square_for(n);
        group.bench_with_input(BenchmarkId::new("random_5x", n), &n, |b, _| {
            b.iter(|| GenericRouter::new().route(&circuit, &cfg).unwrap());
        });
    }
    group.finish();
}

fn bench_qsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsim_router");
    group.sample_size(10);
    for &n in &[20usize, 50, 100] {
        let strings = random_pauli_strings(&PauliWorkloadConfig {
            num_qubits: n,
            num_strings: 20,
            pauli_probability: 0.3,
            seed: 2,
        });
        let cfg = FpqaConfig::square_for(n as u32);
        group.bench_with_input(BenchmarkId::new("pauli_p0.3_20s", n), &n, |b, _| {
            b.iter(|| QsimRouter::new().route_strings(&strings, 0.4, &cfg).unwrap());
        });
    }
    group.finish();
}

fn bench_qaoa(c: &mut Criterion) {
    let mut group = c.benchmark_group("qaoa_router");
    group.sample_size(10);
    for &n in &[20u32, 50, 100] {
        let graph = random_regular(n, 3, 4).expect("regular graph");
        let cfg = FpqaConfig::square_for(n);
        group.bench_with_input(BenchmarkId::new("3_regular", n), &n, |b, _| {
            b.iter(|| {
                QaoaRouter::new()
                    .route_edges(n, graph.edges(), 0.7, &cfg)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generic, bench_qsim, bench_qaoa);
criterion_main!(benches);

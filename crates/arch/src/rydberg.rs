//! The global Rydberg laser interaction model.
//!
//! When the Rydberg laser fires, **every** pair of atoms within the blockade
//! radius `r_b` executes a CZ. Atoms that must not interact have to be
//! separated by more than `safety_factor × r_b` (2.5 in the paper). The
//! router must therefore place atoms so that exactly the intended pairs are
//! close, and the [`RydbergModel`] lets a validator recompute the coupled
//! pairs from raw positions and compare them against the intent.

use std::fmt;

use crate::Position;

/// Rydberg interaction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RydbergModel {
    /// Blockade radius `r_b` (µm): pairs closer than this interact.
    pub radius_um: f64,
    /// Non-interacting atoms must be farther than `safety_factor * radius_um`.
    pub safety_factor: f64,
}

impl Default for RydbergModel {
    fn default() -> Self {
        RydbergModel {
            radius_um: 2.0,
            safety_factor: 2.5,
        }
    }
}

/// A list of atom index pairs, as returned by [`RydbergModel::coupled_pairs`].
pub type PairList = Vec<(usize, usize)>;

/// Classification of an atom pair at Rydberg pulse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionCheck {
    /// Within `r_b`: a CZ executes on this pair.
    Interacting,
    /// Beyond `safety_factor × r_b`: fully decoupled.
    Safe,
    /// In the grey zone between the two radii: the pulse outcome is
    /// non-deterministic — always a compilation error.
    Hazard,
}

impl RydbergModel {
    /// Creates a model with the given blockade radius and safety factor.
    ///
    /// # Panics
    ///
    /// Panics unless `radius_um > 0` and `safety_factor >= 1`.
    pub fn new(radius_um: f64, safety_factor: f64) -> Self {
        assert!(radius_um > 0.0, "blockade radius must be positive");
        assert!(safety_factor >= 1.0, "safety factor must be >= 1");
        RydbergModel {
            radius_um,
            safety_factor,
        }
    }

    /// Classifies the pair at distance `a`–`b`.
    pub fn classify(&self, a: &Position, b: &Position) -> InteractionCheck {
        let d = a.distance(b);
        if d <= self.radius_um {
            InteractionCheck::Interacting
        } else if d > self.safety_factor * self.radius_um {
            InteractionCheck::Safe
        } else {
            InteractionCheck::Hazard
        }
    }

    /// Returns `true` if the pair interacts under a pulse.
    pub fn interacts(&self, a: &Position, b: &Position) -> bool {
        self.classify(a, b) == InteractionCheck::Interacting
    }

    /// Computes every interacting pair among `positions` (O(n²) sweep) and
    /// whether any pair sits in the hazard zone.
    ///
    /// Returns `(interacting index pairs, hazard index pairs)`.
    pub fn coupled_pairs(&self, positions: &[Position]) -> (PairList, PairList) {
        let mut interacting = Vec::new();
        let mut hazards = Vec::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                match self.classify(&positions[i], &positions[j]) {
                    InteractionCheck::Interacting => interacting.push((i, j)),
                    InteractionCheck::Hazard => hazards.push((i, j)),
                    InteractionCheck::Safe => {}
                }
            }
        }
        (interacting, hazards)
    }

    /// Offset (µm) at which a flying ancilla parks next to its partner:
    /// comfortably inside `r_b` while keeping every other grid atom safe.
    pub fn interaction_offset_um(&self) -> f64 {
        self.radius_um * 0.5
    }
}

impl fmt::Display for RydbergModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rydberg[r_b={:.2}um, safe>{:.2}um]",
            self.radius_um,
            self.radius_um * self.safety_factor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Position {
        Position::new(x, y)
    }

    #[test]
    fn classification_zones() {
        let m = RydbergModel::default(); // r_b = 2, safe > 5
        assert_eq!(
            m.classify(&p(0.0, 0.0), &p(1.0, 0.0)),
            InteractionCheck::Interacting
        );
        assert_eq!(
            m.classify(&p(0.0, 0.0), &p(3.0, 0.0)),
            InteractionCheck::Hazard
        );
        assert_eq!(
            m.classify(&p(0.0, 0.0), &p(6.0, 0.0)),
            InteractionCheck::Safe
        );
    }

    #[test]
    fn boundary_is_interacting() {
        let m = RydbergModel::default();
        assert!(m.interacts(&p(0.0, 0.0), &p(2.0, 0.0)));
    }

    #[test]
    fn coupled_pairs_finds_all() {
        let m = RydbergModel::default();
        let pos = vec![p(0.0, 0.0), p(1.0, 0.0), p(20.0, 0.0), p(21.0, 0.0)];
        let (pairs, hazards) = m.coupled_pairs(&pos);
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
        assert!(hazards.is_empty());
    }

    #[test]
    fn hazards_are_reported() {
        let m = RydbergModel::default();
        let pos = vec![p(0.0, 0.0), p(4.0, 0.0)];
        let (pairs, hazards) = m.coupled_pairs(&pos);
        assert!(pairs.is_empty());
        assert_eq!(hazards, vec![(0, 1)]);
    }

    #[test]
    fn grid_neighbours_are_safe_at_default_pitch() {
        // 10 um pitch with r_b = 2 um: neighbours at 10 um > 5 um.
        let m = RydbergModel::default();
        assert_eq!(
            m.classify(&p(0.0, 0.0), &p(10.0, 0.0)),
            InteractionCheck::Safe
        );
    }

    #[test]
    fn parked_ancilla_interacts_with_partner_only() {
        let m = RydbergModel::default();
        let offset = m.interaction_offset_um();
        // Ancilla next to site (0,0); next site at 10 um.
        let pos = vec![p(0.0, 0.0), p(offset, 0.0), p(10.0, 0.0)];
        let (pairs, hazards) = m.coupled_pairs(&pos);
        assert_eq!(pairs, vec![(0, 1)]);
        assert!(hazards.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_radius_rejected() {
        RydbergModel::new(0.0, 2.5);
    }
}

//! Peephole optimisation passes.
//!
//! These implement the gate-level cleanups a production transpiler (e.g.
//! Qiskit at optimisation level 3) performs after routing, and are used by
//! the baseline compilers so that baseline gate counts are not inflated by
//! trivially-cancellable gates:
//!
//! * cancellation of adjacent self-inverse pairs (`H·H`, `CX·CX`, `CZ·CZ`,
//!   `X·X`, …) with commutation through disjoint gates,
//! * merging of adjacent rotations about the same axis (`Rz·Rz → Rz`),
//! * removal of rotations with angle ≡ 0 (mod 4π).

use crate::{Circuit, Gate, Operands};

/// Result statistics of an optimisation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Gates removed by pair cancellation.
    pub cancelled: usize,
    /// Rotations merged into a predecessor.
    pub merged: usize,
    /// Identity rotations dropped.
    pub dropped_identities: usize,
}

/// Angle below which a rotation is treated as identity.
const EPS: f64 = 1e-12;

/// Repeatedly applies `cancel_pairs_once` and rotation merging until a
/// fixed point, returning the optimised circuit and statistics.
pub fn peephole(circuit: &Circuit) -> (Circuit, OptimizeStats) {
    let mut stats = OptimizeStats::default();
    let mut current = circuit.clone();
    loop {
        let (next, s) = pass_once(&current);
        stats.cancelled += s.cancelled;
        stats.merged += s.merged;
        stats.dropped_identities += s.dropped_identities;
        let changed = s.cancelled + s.merged + s.dropped_identities > 0;
        current = next;
        if !changed {
            return (current, stats);
        }
    }
}

/// Single optimisation pass (one linear scan per rule family).
fn pass_once(circuit: &Circuit) -> (Circuit, OptimizeStats) {
    let mut stats = OptimizeStats::default();
    let n_qubits = circuit.num_qubits();
    // `kept` holds indices (into circuit.gates()) still alive; per-qubit
    // stacks track, for each wire, the most recent alive gate touching it.
    let gates = circuit.gates();
    let mut alive = vec![true; gates.len()];
    let mut last_on: Vec<Option<usize>> = vec![None; n_qubits as usize];
    let mut merged_angles: Vec<f64> = gates
        .iter()
        .map(|g| match *g {
            Gate::Rx(_, t) | Gate::Ry(_, t) | Gate::Rz(_, t) | Gate::Zz(_, _, t) => t,
            _ => 0.0,
        })
        .collect();

    for i in 0..gates.len() {
        let g = gates[i];
        // Find the previous alive gate(s) on this gate's wires.
        let prev: Option<usize> = match g.operands() {
            Operands::One(q) => last_on[q.index()],
            Operands::Two(a, b) => {
                let pa = last_on[a.index()];
                let pb = last_on[b.index()];
                // Both wires must point at the same immediate predecessor
                // for a 2Q-2Q cancellation to be sound.
                if pa == pb {
                    pa
                } else {
                    None
                }
            }
        };

        if let Some(p) = prev {
            if alive[p] {
                let pg = reangled(gates[p], merged_angles[p]);
                // Inverse-pair cancellation (covers self-inverse gates like
                // H/CX/CZ and proper pairs like S·S†, T·T†).
                if pg.inverse().same_operation(&g) && is_cancellable(&g) {
                    alive[p] = false;
                    alive[i] = false;
                    stats.cancelled += 2;
                    clear_wires(&g, &mut last_on, p);
                    continue;
                }
                // Rotation merging (same axis, same operands).
                if let Some(sum) = mergeable(&pg, &g, merged_angles[p], &merged_angles, i) {
                    merged_angles[p] = sum;
                    alive[i] = false;
                    stats.merged += 1;
                    if sum.abs() < EPS {
                        alive[p] = false;
                        stats.dropped_identities += 1;
                        clear_wires(&g, &mut last_on, p);
                    }
                    continue;
                }
            }
        }

        // Identity rotation dropping.
        if is_rotation(&g) && merged_angles[i].abs() < EPS {
            alive[i] = false;
            stats.dropped_identities += 1;
            continue;
        }

        for q in g.operands() {
            last_on[q.index()] = Some(i);
        }
    }

    let mut out = Circuit::with_capacity(n_qubits, gates.len());
    for i in 0..gates.len() {
        if alive[i] {
            out.push_unchecked(reangled(gates[i], merged_angles[i]));
        }
    }
    (out, stats)
}

fn is_rotation(g: &Gate) -> bool {
    matches!(
        g,
        Gate::Rx(_, _) | Gate::Ry(_, _) | Gate::Rz(_, _) | Gate::Zz(_, _, _)
    )
}

fn is_cancellable(g: &Gate) -> bool {
    matches!(
        g,
        Gate::H(_)
            | Gate::X(_)
            | Gate::Y(_)
            | Gate::Z(_)
            | Gate::S(_)
            | Gate::Sdg(_)
            | Gate::T(_)
            | Gate::Tdg(_)
            | Gate::Cx(_, _)
            | Gate::Cz(_, _)
            | Gate::Swap(_, _)
    )
}

fn mergeable(
    prev: &Gate,
    cur: &Gate,
    prev_angle: f64,
    angles: &[f64],
    cur_idx: usize,
) -> Option<f64> {
    let cur_angle = angles[cur_idx];
    match (*prev, *cur) {
        (Gate::Rx(a, _), Gate::Rx(b, _)) if a == b => Some(prev_angle + cur_angle),
        (Gate::Ry(a, _), Gate::Ry(b, _)) if a == b => Some(prev_angle + cur_angle),
        (Gate::Rz(a, _), Gate::Rz(b, _)) if a == b => Some(prev_angle + cur_angle),
        (Gate::Zz(a, b, _), Gate::Zz(c, d, _)) if (a, b) == (c, d) || (a, b) == (d, c) => {
            Some(prev_angle + cur_angle)
        }
        _ => None,
    }
}

fn reangled(g: Gate, angle: f64) -> Gate {
    match g {
        Gate::Rx(q, _) => Gate::Rx(q, angle),
        Gate::Ry(q, _) => Gate::Ry(q, angle),
        Gate::Rz(q, _) => Gate::Rz(q, angle),
        Gate::Zz(a, b, _) => Gate::Zz(a, b, angle),
        other => other,
    }
}

fn clear_wires(g: &Gate, last_on: &mut [Option<usize>], expected: usize) {
    for q in g.operands() {
        if last_on[q.index()] == Some(expected) {
            last_on[q.index()] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_h_pair_cancels() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let (opt, stats) = peephole(&c);
        assert!(opt.is_empty());
        assert_eq!(stats.cancelled, 2);
    }

    #[test]
    fn adjacent_cx_pair_cancels() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let (opt, _) = peephole(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn reversed_cx_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        let (opt, _) = peephole(&c);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn reversed_cz_cancels() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(1, 0);
        let (opt, _) = peephole(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn interleaved_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(1, 0.5).cx(0, 1);
        let (opt, _) = peephole(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn disjoint_gate_does_not_block() {
        // h q2 between the CXs acts on an unrelated wire.
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).cx(0, 1);
        let (opt, _) = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.gates()[0], Gate::H(crate::Qubit::new(2)));
    }

    #[test]
    fn rz_chain_merges() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.25).rz(0, 0.5).rz(0, 0.25);
        let (opt, stats) = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(stats.merged, 2);
        match opt.gates()[0] {
            Gate::Rz(_, t) => assert!((t - 1.0).abs() < 1e-12),
            ref g => panic!("expected rz, got {g}"),
        }
    }

    #[test]
    fn opposite_rotations_vanish() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.7).rz(0, -0.7);
        let (opt, _) = peephole(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn zero_rotation_dropped() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.0);
        let (opt, stats) = peephole(&c);
        assert!(opt.is_empty());
        assert_eq!(stats.dropped_identities, 1);
    }

    #[test]
    fn zz_merge_is_symmetric() {
        let mut c = Circuit::new(2);
        c.zz(0, 1, 0.3).zz(1, 0, 0.2);
        let (opt, _) = peephole(&c);
        assert_eq!(opt.len(), 1);
        match opt.gates()[0] {
            Gate::Zz(_, _, t) => assert!((t - 0.5).abs() < 1e-12),
            ref g => panic!("expected zz, got {g}"),
        }
    }

    #[test]
    fn partial_overlap_blocks_two_qubit_cancellation() {
        // cz(0,1) cz(1,2) cz(0,1): middle gate shares q1, so no cancel.
        let mut c = Circuit::new(3);
        c.cz(0, 1).cz(1, 2).cz(0, 1);
        let (opt, _) = peephole(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn s_sdg_pair_cancels() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0);
        let (opt, _) = peephole(&c);
        assert!(opt.is_empty());
        let mut c = Circuit::new(1);
        c.tdg(0).t(0);
        let (opt, _) = peephole(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn s_s_pair_does_not_cancel() {
        let mut c = Circuit::new(1);
        c.s(0).s(0);
        let (opt, _) = peephole(&c);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn fixed_point_chain() {
        // h h h h collapses fully, needing two passes.
        let mut c = Circuit::new(1);
        c.h(0).h(0).h(0).h(0);
        let (opt, stats) = peephole(&c);
        assert!(opt.is_empty());
        assert_eq!(stats.cancelled, 4);
    }
}

//! The customised QAOA router (Alg. 3).
//!
//! QAOA cost layers apply one `ZZ(γ)` per graph edge. Unlike the generic
//! router, Q-Pilot creates **one persistent ancilla per qubit** (not per
//! gate), recycled only after the whole graph is done. Each stage:
//!
//! 1. picks the remaining edge with the smallest first endpoint; its
//!    ancilla's AOD row becomes the stage's first active row, and the
//!    matching fixes one AOD-column displacement;
//! 2. greedily matches more edges within the same (AOD row, SLM row) pair,
//!    adding active columns while their home/target orders stay aligned
//!    and parked columns still fit in the gaps between targets;
//! 3. walks the remaining AOD rows downward, choosing for each the SLM row
//!    that executes the most edges with **zero undesired interactions**
//!    (every occupied cross must be a remaining edge); rows that cannot
//!    match park on row midpoints, which the 2.5·r_b rule keeps silent;
//! 4. fires the global Rydberg pulse, executing every matched edge.
//!
//! Parked lines sit on grid midpoints (`pitch/2` away from any SLM line),
//! which is safe because the safety radius (2.5 × 1.5 µm) is below half the
//! 10 µm pitch — the geometric precondition called out in
//! [`FpqaConfig`].

use std::collections::{BTreeSet, HashMap, HashSet};

use qpilot_arch::GridCoord;
use qpilot_circuit::Gate;

use crate::cancel::CancelToken;
use crate::error::RouteError;
use crate::legality::PairMatcher;
use crate::motion::{axis_coords, park_col_base, park_row_base, OFFSET_MIN};
use crate::schedule::{
    AncillaId, AtomRef, CompiledProgram, RydbergOp, Schedule, ScheduleBuilder, TransferOp,
};
use crate::FpqaConfig;

/// Options for [`QaoaRouter`] (ablation knobs; defaults reproduce the
/// paper's algorithm with this crate's refinements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QaoaRouterOptions {
    /// How many of the densest (AOD row, SLM row) buckets to evaluate as
    /// stage anchors. `1` approximates the paper's plain "smallest first
    /// edge" rule; larger values search harder for parallel stages.
    pub anchor_candidates: usize,
    /// Whether to grow the column pattern after the row sweep.
    pub column_extension: bool,
    /// Worker threads for candidate-stage evaluation (the per-stage
    /// argmax over anchors × seed modes). Purely an execution policy:
    /// the argmax tie-breaks by candidate enumeration order regardless
    /// of completion order, so any value produces byte-identical
    /// schedules (differentially tested). Not part of the compile
    /// fingerprint. Defaults to `1` (serial).
    pub search_threads: usize,
    /// Skip anchors whose bucket edge set is a subset of the current
    /// best candidate's matched set (they seed no column pattern the
    /// best stage does not already execute). Ablation knob; not part of
    /// the compile fingerprint.
    pub prune_dominated: bool,
}

impl Default for QaoaRouterOptions {
    fn default() -> Self {
        QaoaRouterOptions {
            anchor_candidates: 8,
            column_extension: true,
            search_threads: 1,
            prune_dominated: true,
        }
    }
}

/// The QAOA flying-ancilla router (Alg. 3 of the paper).
///
/// # Example
///
/// ```
/// use qpilot_core::{qaoa::QaoaRouter, FpqaConfig};
///
/// let cfg = FpqaConfig::for_qubits(4, 2);
/// let edges = [(0, 1), (1, 2), (2, 3), (0, 3)];
/// let p = QaoaRouter::new().route_edges(4, &edges, 0.7, &cfg).unwrap();
/// // 2 qubits-worth of create/recycle CNOTs plus one op per edge.
/// assert_eq!(p.stats().two_qubit_gates, 2 * 4 + 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QaoaRouter {
    options: QaoaRouterOptions,
    /// Polled once per matching stage inside each cost layer; the default
    /// token never fires.
    pub(crate) cancel: CancelToken,
}

impl QaoaRouter {
    /// Creates a router with default options.
    pub fn new() -> Self {
        QaoaRouter::default()
    }

    /// Creates a router with explicit options.
    pub fn with_options(options: QaoaRouterOptions) -> Self {
        QaoaRouter {
            options,
            cancel: CancelToken::default(),
        }
    }

    /// Routes one QAOA cost layer: `ZZ(γ)` on every edge, with per-qubit
    /// ancillas created first and recycled last.
    ///
    /// # Errors
    ///
    /// * [`RouteError::TooManyQubits`] if `num_qubits` exceeds the array,
    /// * [`RouteError::InvalidEdge`] on self loops / out-of-range edges,
    /// * [`RouteError::AodTooSmall`] if the AOD grid cannot host one
    ///   ancilla per qubit.
    pub fn route_edges(
        &self,
        num_qubits: u32,
        edges: &[(u32, u32)],
        gamma: f64,
        config: &FpqaConfig,
    ) -> Result<CompiledProgram, RouteError> {
        let mut schedule =
            ScheduleBuilder::new(config.num_data(), config.aod_rows(), config.aod_cols());
        let mut prof = QaoaProfile::start();
        self.append_cost_layer(&mut schedule, num_qubits, edges, gamma, config, &mut prof)?;
        prof.flush();
        Ok(schedule.finish_program())
    }

    /// Routes a full depth-1 QAOA round: Hadamard layer, routed cost layer,
    /// `Rx(β)` mixer — directly comparable against
    /// `Graph::qaoa_circuit(&[γ], &[β])` in simulation.
    ///
    /// # Errors
    ///
    /// See [`QaoaRouter::route_edges`].
    pub fn route_qaoa_round(
        &self,
        num_qubits: u32,
        edges: &[(u32, u32)],
        gamma: f64,
        beta: f64,
        config: &FpqaConfig,
    ) -> Result<CompiledProgram, RouteError> {
        let mut schedule =
            ScheduleBuilder::new(config.num_data(), config.aod_rows(), config.aod_cols());
        schedule.raman((0..num_qubits).map(|q| Gate::H(qpilot_circuit::Qubit::new(q))));
        let mut prof = QaoaProfile::start();
        self.append_cost_layer(&mut schedule, num_qubits, edges, gamma, config, &mut prof)?;
        prof.flush();
        schedule.raman((0..num_qubits).map(|q| Gate::Rx(qpilot_circuit::Qubit::new(q), beta)));
        Ok(schedule.finish_program())
    }

    /// Routes a depth-`p` QAOA program: Hadamard layer, then `p` rounds of
    /// routed cost layer + `Rx(betaK)` mixer. Ancillas are re-created per
    /// round — the mixer invalidates the Z-basis copies, so each cost
    /// layer needs fresh fan-outs (create/recycle appears `2p` times in
    /// the native gate count).
    ///
    /// # Errors
    ///
    /// See [`QaoaRouter::route_edges`].
    ///
    /// # Panics
    ///
    /// Panics if `gammas.len() != betas.len()`.
    pub fn route_qaoa_rounds(
        &self,
        num_qubits: u32,
        edges: &[(u32, u32)],
        gammas: &[f64],
        betas: &[f64],
        config: &FpqaConfig,
    ) -> Result<CompiledProgram, RouteError> {
        assert_eq!(gammas.len(), betas.len(), "gamma/beta length mismatch");
        let mut schedule =
            ScheduleBuilder::new(config.num_data(), config.aod_rows(), config.aod_cols());
        schedule.raman((0..num_qubits).map(|q| Gate::H(qpilot_circuit::Qubit::new(q))));
        // One accumulator across all rounds: a single stage-time sample
        // per route call, like the other routers.
        let mut prof = QaoaProfile::start();
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            self.append_cost_layer(&mut schedule, num_qubits, edges, gamma, config, &mut prof)?;
            schedule.raman((0..num_qubits).map(|q| Gate::Rx(qpilot_circuit::Qubit::new(q), beta)));
        }
        prof.flush();
        Ok(schedule.finish_program())
    }

    fn append_cost_layer(
        &self,
        schedule: &mut ScheduleBuilder,
        num_qubits: u32,
        edges: &[(u32, u32)],
        gamma: f64,
        config: &FpqaConfig,
        prof: &mut QaoaProfile,
    ) -> Result<(), RouteError> {
        if num_qubits > config.num_data() {
            return Err(RouteError::TooManyQubits {
                required: num_qubits,
                available: config.num_data(),
            });
        }
        let mut remaining: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &(a, b) in edges {
            if a == b || a >= num_qubits || b >= num_qubits {
                return Err(RouteError::InvalidEdge { a, b });
            }
            remaining.insert((a.min(b), a.max(b)));
        }
        if remaining.is_empty() {
            return Ok(());
        }

        let slm = config.slm();
        let used_rows = (num_qubits as usize).div_ceil(slm.cols());
        let used_cols = slm.cols().min(num_qubits as usize);
        if schedule.aod_rows < used_rows || schedule.aod_cols < used_cols {
            return Err(RouteError::AodTooSmall {
                required: used_rows.max(used_cols),
                available: schedule.aod_rows.min(schedule.aod_cols),
            });
        }

        // One ancilla per qubit, pinned to the qubit's own cross.
        let ancillas: Vec<AncillaId> = (0..num_qubits).map(|_| schedule.fresh_ancilla()).collect();
        let home = |q: u32| -> GridCoord { config.coord_of(q) };

        schedule.transfer((0..num_qubits).map(|q| TransferOp {
            ancilla: ancillas[q as usize],
            row: home(q).row,
            col: home(q).col,
            load: true,
        }));

        // Aligned position: every ancilla hovers next to its home qubit.
        let aligned_rows: Vec<usize> = (0..used_rows).collect();
        let aligned_cols: Vec<usize> = (0..used_cols).collect();
        let pitch = config.pitch_um();
        let aligned = (
            axis_coords(
                &aligned_rows,
                schedule.aod_rows,
                pitch,
                park_row_base(config),
            ),
            axis_coords(
                &aligned_cols,
                schedule.aod_cols,
                pitch,
                park_col_base(config),
            ),
        );
        let aligned_move = schedule.move_stage(&aligned.0, &aligned.1);
        let num_data = schedule.num_data;
        let h_stage = schedule.raman((0..num_qubits).map(|q| {
            Gate::H(crate::schedule::ancilla_register_qubit(
                num_data,
                ancillas[q as usize],
            ))
        }));
        let create_stage = schedule.rydberg(
            (0..num_qubits)
                .map(|q| RydbergOp::cz(AtomRef::Data(q), AtomRef::Ancilla(ancillas[q as usize]))),
        );
        schedule.repeat_stage(h_stage);

        // Stage loop. Edge buckets are built once and maintained
        // incrementally as edges execute (the pre-PR code re-bucketed all
        // remaining edges every stage, which dominated routing time on
        // large graphs — see ROADMAP "Perf open items"). The bitset
        // mirrors `remaining` for O(1) membership in the row-sweep inner
        // loop; the memo carries first-row matchings across stages.
        let mut buckets = EdgeBuckets::build(&remaining, config);
        let mut edge_bits = EdgeBits::new(num_qubits as usize);
        for &(u, v) in &remaining {
            edge_bits.insert(u, v);
        }
        let geom = Geometry::build(config, num_qubits);
        let mut memo = FirstRowMemo::default();
        let mut oriented_scratch: Vec<(u32, u32, u32, u32)> = Vec::new();
        prof.lap_setup();
        while !remaining.is_empty() {
            // Stage boundary: stop cleanly before solving the next stage.
            self.cancel.check()?;
            oriented_scratch.clear();
            oriented_scratch.extend(
                buckets.oriented.iter().map(|&(src, tgt)| {
                    (src, tgt, geom.coord(src).1 as u32, geom.coord(tgt).1 as u32)
                }),
            );
            let ctx = SearchContext {
                remaining: &remaining,
                edge_bits: &edge_bits,
                buckets: &buckets,
                geom: &geom,
                oriented: &oriented_scratch,
                config,
                num_qubits,
                used_rows,
                slm_rows: config.slm().rows(),
                options: &self.options,
            };
            let solution = solve_stage(&ctx, &mut memo);
            debug_assert!(!solution.matched.is_empty(), "stage must match >= 1 edge");
            for &(u, v) in &solution.matched {
                let e = (u.min(v), u.max(v));
                remaining.remove(&e);
                edge_bits.remove(e.0, e.1);
                buckets.remove(e.0, e.1, config);
            }
            prof.lap_select();
            let (row_y, col_x) =
                stage_coords(&solution, schedule.schedule(), config, used_rows, used_cols);
            schedule.move_stage(&row_y, &col_x);
            schedule.rydberg(solution.matched.iter().map(|&(src, tgt)| {
                RydbergOp::zz(
                    AtomRef::Ancilla(ancillas[src as usize]),
                    AtomRef::Data(tgt),
                    gamma,
                )
            }));
            prof.lap_emit();
        }

        // Recycle: fly home, uncopy, unload (pool copies of the create
        // stages).
        schedule.repeat_stage(aligned_move);
        schedule.repeat_stage(h_stage);
        schedule.repeat_stage(create_stage);
        schedule.repeat_stage(h_stage);
        schedule.transfer((0..num_qubits).map(|q| TransferOp {
            ancilla: ancillas[q as usize],
            row: home(q).row,
            col: home(q).col,
            load: false,
        }));
        prof.lap_setup();
        Ok(())
    }
}

/// Per-route stage-time accumulator (see [`crate::obs::PhaseClock`]):
/// create/recycle and bucket maintenance count as `setup`, the matching
/// search as `select`, coordinates/moves/pulses as `emit`. Flushed to
/// the QAOA stage histograms once per public `route_*` call.
#[derive(Debug, Default)]
struct QaoaProfile {
    clock: Option<crate::obs::PhaseClock>,
    setup: u64,
    select: u64,
    emit: u64,
}

impl QaoaProfile {
    fn start() -> QaoaProfile {
        QaoaProfile {
            clock: crate::obs::PhaseClock::start(),
            ..QaoaProfile::default()
        }
    }

    fn lap_setup(&mut self) {
        crate::obs::lap(&mut self.clock, &mut self.setup);
    }

    fn lap_select(&mut self) {
        crate::obs::lap(&mut self.clock, &mut self.select);
    }

    fn lap_emit(&mut self) {
        crate::obs::lap(&mut self.clock, &mut self.emit);
    }

    fn flush(&self) {
        if self.clock.is_some() {
            crate::obs::QAOA_SETUP.record_ns(self.setup);
            crate::obs::QAOA_SELECT.record_ns(self.select);
            crate::obs::QAOA_EMIT.record_ns(self.emit);
        }
    }
}

/// A solved stage: which AOD columns/rows are active and which edges fire.
#[derive(Debug, Clone, Default)]
struct StageSolution {
    /// Active `(home AOD column, target SLM column)` pairs, maintained by
    /// the shared incremental matcher from [`crate::legality`].
    active_cols: PairMatcher,
    /// `(home AOD row, target SLM row)`, strictly increasing in both.
    active_rows: Vec<(usize, usize)>,
    /// Matched edges as `(ancilla-owner qubit, SLM target qubit)`.
    matched: Vec<(u32, u32)>,
}

/// Remaining edges bucketed by `(ancilla home row, target SLM row)` in
/// both orientations, maintained incrementally across stages: edges leave
/// their two buckets as they execute instead of the whole structure being
/// rebuilt per stage. Buckets are `BTreeSet`s so iteration order equals
/// the sorted order the per-stage rebuild used to produce — stage
/// construction is unchanged, only its cost is.
#[derive(Debug, Default)]
struct EdgeBuckets {
    map: HashMap<(usize, usize), BTreeSet<(u32, u32)>>,
    /// Every remaining edge in both orientations, sorted — the
    /// column-extension candidate stream, maintained here so stage
    /// construction never re-collects and re-sorts the edge set.
    oriented: BTreeSet<(u32, u32)>,
    /// For each ancilla home row, the SLM target rows with a live bucket,
    /// sorted ascending. The row sweeps scan only these: a `(aod_row, y)`
    /// placement can match an edge iff bucket `(aod_row, y)` is non-empty
    /// (a matched edge's source sits on `aod_row` and its target on `y` —
    /// exactly that bucket's signature), so skipping empty rows is
    /// outcome-exact. Plain sorted `Vec`s: the sets are at most
    /// `slm_rows` long, so ordered insert/remove beats tree overhead.
    rows_of: HashMap<usize, Vec<usize>>,
    /// Per-bucket modification stamps for [`FirstRowMemo`] invalidation.
    mods: HashMap<(usize, usize), u64>,
    tick: u64,
}

impl EdgeBuckets {
    /// Buckets every remaining (normalised) edge, both orientations.
    fn build(remaining: &BTreeSet<(u32, u32)>, config: &FpqaConfig) -> Self {
        let mut buckets = EdgeBuckets::default();
        for &(u, v) in remaining {
            for (src, tgt) in [(u, v), (v, u)] {
                let key = (config.coord_of(src).row, config.coord_of(tgt).row);
                buckets.map.entry(key).or_default().insert((src, tgt));
                let rows = buckets.rows_of.entry(key.0).or_default();
                if let Err(i) = rows.binary_search(&key.1) {
                    rows.insert(i, key.1);
                }
                buckets.oriented.insert((src, tgt));
            }
        }
        buckets
    }

    /// Removes an executed edge's two orientations; empty buckets vanish
    /// so the anchor-candidate scan only ever sees live buckets.
    fn remove(&mut self, u: u32, v: u32, config: &FpqaConfig) {
        for (src, tgt) in [(u, v), (v, u)] {
            let key = (config.coord_of(src).row, config.coord_of(tgt).row);
            if let Some(bucket) = self.map.get_mut(&key) {
                if bucket.remove(&(src, tgt)) {
                    self.tick += 1;
                    self.mods.insert(key, self.tick);
                }
                if bucket.is_empty() {
                    self.map.remove(&key);
                    if let Some(rows) = self.rows_of.get_mut(&key.0) {
                        if let Ok(i) = rows.binary_search(&key.1) {
                            rows.remove(i);
                        }
                        if rows.is_empty() {
                            self.rows_of.remove(&key.0);
                        }
                    }
                }
            }
            self.oriented.remove(&(src, tgt));
        }
    }

    /// The bucket's modification stamp (0 = untouched since build).
    fn stamp(&self, key: (usize, usize)) -> u64 {
        self.mods.get(&key).copied().unwrap_or(0)
    }
}

/// Normalised-edge membership bitset, used both for the long-lived
/// mirror of the `remaining` set and for the per-candidate matched sets:
/// the row sweeps and the column-extension legality scan test edge
/// membership in their innermost loops, and a flat bit lookup beats the
/// `BTreeSet` descent / SipHash `HashSet` probe that used to sit there.
#[derive(Debug, Clone)]
struct EdgeBits {
    words: Vec<u64>,
    stride: usize,
}

impl EdgeBits {
    fn new(num_qubits: usize) -> Self {
        EdgeBits {
            words: vec![0; (num_qubits * num_qubits).div_ceil(64)],
            stride: num_qubits,
        }
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `true` iff the edge is in `self` and not in `other` ("fresh"):
    /// both bitsets share a stride, so the bit index is computed once for
    /// the paired probe the sweep/extension inner loops make.
    #[inline]
    fn fresh(&self, other: &EdgeBits, u: u32, v: u32) -> bool {
        debug_assert_eq!(self.stride, other.stride);
        let (w, m) = self.bit(u, v);
        self.words[w] & m != 0 && other.words[w] & m == 0
    }

    #[inline]
    fn bit(&self, u: u32, v: u32) -> (usize, u64) {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let idx = a as usize * self.stride + b as usize;
        (idx / 64, 1u64 << (idx % 64))
    }

    fn insert(&mut self, u: u32, v: u32) {
        let (w, m) = self.bit(u, v);
        self.words[w] |= m;
    }

    fn remove(&mut self, u: u32, v: u32) {
        let (w, m) = self.bit(u, v);
        self.words[w] &= !m;
    }

    #[inline]
    fn contains(&self, u: u32, v: u32) -> bool {
        let (w, m) = self.bit(u, v);
        self.words[w] & m != 0
    }
}

/// Flat per-route geometry cache: qubit → grid coordinate and site →
/// qubit, replacing the division in [`FpqaConfig::coord_of`] and the
/// asserted multiply in [`FpqaConfig::qubit_at`] on the per-cross hot
/// path (both run once per occupied cross per scored row).
struct Geometry {
    /// `(row, col)` per data qubit.
    coords: Vec<(usize, usize)>,
    /// Row-major `slm_rows × slm_cols` grid; `u32::MAX` marks a site
    /// with no data qubit.
    grid: Vec<u32>,
    cols: usize,
}

impl Geometry {
    fn build(config: &FpqaConfig, num_qubits: u32) -> Self {
        let (rows, cols) = (config.slm().rows(), config.slm().cols());
        let mut grid = vec![u32::MAX; rows * cols];
        let mut coords = Vec::with_capacity(num_qubits as usize);
        for q in 0..num_qubits {
            let c = config.coord_of(q);
            coords.push((c.row, c.col));
            grid[c.row * cols + c.col] = q;
        }
        Geometry { coords, grid, cols }
    }

    #[inline]
    fn coord(&self, q: u32) -> (usize, usize) {
        self.coords[q as usize]
    }

    /// Data qubit at `(row, col)`; rows/cols seen by the search always
    /// come from live bucket keys or active column patterns, both inside
    /// the grid.
    #[inline]
    fn qubit_at(&self, row: usize, col: usize) -> Option<u32> {
        let q = self.grid[row * self.cols + col];
        (q != u32::MAX).then_some(q)
    }
}

/// Read-only state shared by every candidate evaluation of one stage.
/// `Sync` by construction, so candidates can fan out across worker
/// threads ([`crate::par::parallel_map`]).
struct SearchContext<'a> {
    remaining: &'a BTreeSet<(u32, u32)>,
    edge_bits: &'a EdgeBits,
    buckets: &'a EdgeBuckets,
    geom: &'a Geometry,
    /// The stage's column-extension candidate stream — `buckets.oriented`
    /// flattened once per stage with each edge's `(home col, target col)`
    /// precomputed, since every candidate of the stage walks the same
    /// stream.
    oriented: &'a [(u32, u32, u32, u32)],
    config: &'a FpqaConfig,
    num_qubits: u32,
    used_rows: usize,
    slm_rows: usize,
    options: &'a QaoaRouterOptions,
}

/// First-row matchings memoised per anchor bucket across stages: the
/// greedy column insertion depends only on the bucket's contents (sorted
/// iteration) and static geometry, so it is recomputed only when the
/// bucket's modification stamp moves — on a 3-regular graph most anchor
/// buckets survive a committed stage untouched.
#[derive(Debug, Default)]
struct FirstRowMemo {
    map: HashMap<(usize, usize), (u64, PairMatcher)>,
}

impl FirstRowMemo {
    fn get(
        &mut self,
        buckets: &EdgeBuckets,
        config: &FpqaConfig,
        key: (usize, usize),
    ) -> &PairMatcher {
        let stamp = buckets.stamp(key);
        let entry = self
            .map
            .entry(key)
            .or_insert_with(|| (u64::MAX, PairMatcher::new()));
        if entry.0 != stamp {
            entry.1 = first_row_matching(&buckets.map[&key], config);
            entry.0 = stamp;
        }
        &entry.1
    }
}

/// The maximum greedy first-row matching over a bucket: column insertion
/// in sorted edge order; each (normalised) edge may seed one orientation
/// only — both at once would execute it twice in the same pulse.
fn first_row_matching(bucket: &BTreeSet<(u32, u32)>, config: &FpqaConfig) -> PairMatcher {
    let mut cols = PairMatcher::new();
    let mut seeded: HashSet<(u32, u32)> = HashSet::new();
    for &(src, tgt) in bucket {
        let e = (src.min(tgt), src.max(tgt));
        if seeded.contains(&e) {
            continue;
        }
        if cols.insert(config.coord_of(src).col, config.coord_of(tgt).col) {
            seeded.insert(e);
        }
    }
    cols
}

/// The sparse seed: only the bucket's first edge opens the column
/// pattern, which often lets *more rows* match on sparse graphs. (An
/// empty matcher accepts any first pair, so this is exactly the
/// `seed_all = false` prefix of the greedy scan.)
fn sparse_first_row(bucket: &BTreeSet<(u32, u32)>, config: &FpqaConfig) -> PairMatcher {
    let mut cols = PairMatcher::new();
    if let Some(&(src, tgt)) = bucket.iter().next() {
        let inserted = cols.insert(config.coord_of(src).col, config.coord_of(tgt).col);
        debug_assert!(inserted, "empty matcher accepts any pair");
    }
    cols
}

/// One candidate of a stage's argmax: an anchor bucket plus a seed mode,
/// carrying its pre-built first-row column pattern.
struct StageCandidate {
    r0: usize,
    y0: usize,
    seed_all: bool,
    cols: PairMatcher,
}

/// Reusable per-candidate working buffers. The serial walk builds ~16
/// candidates per stage; sharing one scratch across them (and across
/// stages) keeps allocation out of the search. Parallel workers allocate
/// their own — the contents never outlive one [`build_candidate`] call,
/// so reuse is invisible to the result.
struct CandidateScratch {
    /// Edges matched by the candidate under construction.
    stage_matched: EdgeBits,
    /// Snapshot of `stage_matched` taken before column extension.
    pre_extension: EdgeBits,
    /// Column-pair evaluation stamps (`usize::MAX` = never evaluated).
    evaluated: Vec<usize>,
}

impl CandidateScratch {
    fn new(num_qubits: u32, slm_cols: usize) -> Self {
        CandidateScratch {
            stage_matched: EdgeBits::new(num_qubits as usize),
            pre_extension: EdgeBits::new(num_qubits as usize),
            evaluated: vec![usize::MAX; slm_cols * slm_cols],
        }
    }
}

/// Greedy stage construction following Alg. 3, with the paper's "maximum
/// matching on the first row" refinement: among the densest (AOD row, SLM
/// row) buckets of remaining edges, build candidate stages (dense and
/// sparse column seeds, plus a post-sweep column-extension pass) and keep
/// the one executing the most edges.
///
/// The search is a pure argmax over the candidate list, so three
/// accelerations leave the chosen stage byte-identical (differentially
/// tested against the pre-optimisation goldens):
///
/// * first-row matchings come from [`FirstRowMemo`] instead of being
///   rebuilt per stage;
/// * with [`QaoaRouterOptions::prune_dominated`], anchors whose bucket
///   edge set is a subset of the current best candidate's matched set
///   are skipped — the walk applies the same skip in every execution
///   mode, so the selection stays deterministic;
/// * with [`QaoaRouterOptions::search_threads`] > 1 candidates are
///   evaluated by [`crate::par::parallel_map`] and the winner is chosen
///   by a serial walk in enumeration order — ties break toward the
///   earliest candidate exactly as the serial loop always did,
///   regardless of completion order.
fn solve_stage(ctx: &SearchContext<'_>, memo: &mut FirstRowMemo) -> StageSolution {
    // Candidate anchors: the densest buckets, plus the bucket holding the
    // globally smallest edge (the paper's e0) as a deterministic fallback.
    // Bucket sizes ride along in the sort key (one map pass) rather than
    // being re-fetched inside the comparator.
    let &(a0, b0) = ctx.remaining.iter().next().expect("non-empty edge set");
    // Bounded selection instead of a full sort: one pass keeps the k
    // smallest sort keys in a sorted scratch array (most entries lose a
    // single comparison against the current k-th). The key order is
    // total ((r, y) is unique per bucket), so the selected keys — and
    // with them the argmax — are exactly the full sort's first k.
    let k = ctx.options.anchor_candidates.max(1);
    let mut keyed: Vec<(std::cmp::Reverse<usize>, usize, usize)> = Vec::with_capacity(k + 1);
    for (key, bucket) in ctx.buckets.map.iter() {
        let entry = (std::cmp::Reverse(bucket.len()), key.0, key.1);
        if keyed.len() == k {
            if entry >= *keyed.last().expect("k >= 1") {
                continue;
            }
            keyed.pop();
        }
        let at = keyed.partition_point(|e| *e < entry);
        keyed.insert(at, entry);
    }
    let mut keys: Vec<(usize, usize)> = keyed.into_iter().map(|(_, r, y)| (r, y)).collect();
    let e0_key = (ctx.geom.coord(a0).0, ctx.geom.coord(b0).0);
    if !keys.contains(&e0_key) {
        keys.push(e0_key);
    }

    // Enumerate candidates in the fixed argmax order: sorted keys × seed
    // modes (dense first). The first-row patterns are resolved up front
    // (memo access needs `&mut`, candidate evaluation is `&`-parallel).
    let mut candidates: Vec<StageCandidate> = Vec::with_capacity(keys.len() * 2);
    for &key in &keys {
        let dense = memo.get(ctx.buckets, ctx.config, key).clone();
        let sparse = sparse_first_row(&ctx.buckets.map[&key], ctx.config);
        // A sparse seed equal to the dense one (single-insertion bucket)
        // builds the identical candidate; under strict-improvement
        // selection the later duplicate can never win, so it is skipped
        // without changing the argmax.
        let distinct = sparse.pairs() != dense.pairs();
        candidates.push(StageCandidate {
            r0: key.0,
            y0: key.1,
            seed_all: true,
            cols: dense,
        });
        if distinct {
            candidates.push(StageCandidate {
                r0: key.0,
                y0: key.1,
                seed_all: false,
                cols: sparse,
            });
        }
    }

    // Parallel mode solves every candidate eagerly (pruned ones waste a
    // worker slot but cannot change the outcome); serial mode solves
    // lazily inside the selection walk so pruning skips real work.
    let threads = ctx.options.search_threads.max(1);
    let slm_cols = ctx.config.slm().cols();
    let mut solved: Vec<Option<StageSolution>> = if threads > 1 && candidates.len() > 1 {
        crate::par::parallel_map(&candidates, threads, |c| {
            let mut scratch = CandidateScratch::new(ctx.num_qubits, slm_cols);
            Some(build_candidate(
                ctx,
                c.r0,
                c.y0,
                c.cols.clone(),
                &mut scratch,
            ))
        })
    } else {
        candidates.iter().map(|_| None).collect()
    };
    let mut scratch = CandidateScratch::new(ctx.num_qubits, slm_cols);

    // Selection walk, identical in every execution mode: anchors are
    // visited in enumeration order, pruned anchors are skipped before
    // their candidates are considered, and a candidate replaces the best
    // only when strictly better (first-wins tie-breaking).
    let mut best: Option<StageSolution> = None;
    let mut best_matched = EdgeBits::new(ctx.num_qubits as usize);
    let mut anchor_pruned = false;
    for (i, cand) in candidates.iter().enumerate() {
        if cand.seed_all {
            // Anchor boundary: decide the prune once per anchor, before
            // either seed mode is considered.
            anchor_pruned = ctx.options.prune_dominated
                && best.is_some()
                && ctx.buckets.map[&(cand.r0, cand.y0)]
                    .iter()
                    .all(|&(u, v)| best_matched.contains(u, v));
        }
        if anchor_pruned {
            continue;
        }
        let candidate = solved[i].take().unwrap_or_else(|| {
            build_candidate(ctx, cand.r0, cand.y0, cand.cols.clone(), &mut scratch)
        });
        if best
            .as_ref()
            .map(|b| candidate.matched.len() > b.matched.len())
            .unwrap_or(true)
        {
            best_matched.clear();
            for &(u, v) in &candidate.matched {
                best_matched.insert(u, v);
            }
            best = Some(candidate);
        }
    }
    let sol = best.expect("at least the e0 bucket yields a stage");
    debug_assert!(!sol.matched.is_empty());
    sol
}

/// Builds one candidate stage anchored at AOD row `r0` targeting SLM row
/// `y0`, from a pre-built first-row column pattern: commit the anchor
/// row, sweep the remaining AOD rows down then up, then try to grow the
/// column pattern against the committed rows.
fn build_candidate(
    ctx: &SearchContext<'_>,
    r0: usize,
    y0: usize,
    active_cols: PairMatcher,
    scratch: &mut CandidateScratch,
) -> StageSolution {
    let norm = |u: u32, v: u32| (u.min(v), u.max(v));
    let qubit_at = |row: usize, col: usize| -> Option<u32> { ctx.geom.qubit_at(row, col) };
    let used_rows = ctx.used_rows;
    let mut sol = StageSolution {
        active_cols,
        ..StageSolution::default()
    };

    // Row sweep. Matched set is tracked to reject double execution — as
    // a bitset: the score closure probes it once per occupied cross in
    // the innermost sweep loop.
    let CandidateScratch {
        stage_matched,
        pre_extension,
        evaluated,
    } = scratch;
    stage_matched.clear();

    // Commit the anchor row's matches.
    sol.active_rows.push((r0, y0));
    for &(hc, tc) in sol.active_cols.pairs() {
        if let (Some(u), Some(v)) = (qubit_at(r0, hc), qubit_at(y0, tc)) {
            stage_matched.insert(u, v);
            sol.matched.push((u, v));
        }
    }

    let slm_rows = ctx.slm_rows;
    // Scores a candidate (aod_row, y) placement: Some(count) iff every
    // occupied cross is a fresh remaining edge.
    let score =
        |aod_row: usize, y: usize, cols: &PairMatcher, matched: &EdgeBits| -> Option<usize> {
            let mut count = 0usize;
            for &(hc, tc) in cols.pairs() {
                if let (Some(u), Some(v)) = (qubit_at(aod_row, hc), qubit_at(y, tc)) {
                    if ctx.edge_bits.fresh(matched, u, v) {
                        count += 1;
                    } else {
                        return None;
                    }
                }
            }
            Some(count)
        };
    let commit =
        |sol: &mut StageSolution, matched: &mut EdgeBits, aod_row: usize, y: usize, front: bool| {
            if front {
                sol.active_rows.insert(0, (aod_row, y));
            } else {
                sol.active_rows.push((aod_row, y));
            }
            for &(hc, tc) in sol.active_cols.pairs() {
                if let (Some(u), Some(v)) = (qubit_at(aod_row, hc), qubit_at(y, tc)) {
                    matched.insert(u, v);
                    sol.matched.push((u, v));
                }
            }
        };

    // The sweeps score only SLM rows with a live `(aod_row, y)` bucket: a
    // placement matching `count > 0` edges needs an edge whose source
    // home row is `aod_row` and target row is `y` — exactly that bucket's
    // signature — so empty rows can only ever score 0 and never win over
    // `None` under the strict `count > 0` guard.
    let live_rows_of = |aod_row: usize| -> &[usize] {
        ctx.buckets
            .rows_of
            .get(&aod_row)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    };

    // Downward sweep: AOD rows below the anchor map to SLM rows below y0.
    let mut last_y = y0;
    let mut parked_since = 0usize;
    for aod_row in (r0 + 1)..used_rows {
        let live_rows = live_rows_of(aod_row);
        let min_y = last_y + parked_since.max(1);
        let start = live_rows.partition_point(|&y| y < min_y);
        let mut best: Option<(usize, usize)> = None; // (count, y)
        for &y in &live_rows[start..] {
            if y >= slm_rows {
                break;
            }
            if let Some(count) = score(aod_row, y, &sol.active_cols, stage_matched) {
                if count > 0 && best.map(|(c, _)| count > c).unwrap_or(true) {
                    best = Some((count, y));
                }
            }
        }
        if let Some((_, y)) = best {
            commit(&mut sol, stage_matched, aod_row, y, false);
            last_y = y;
            parked_since = 0;
        } else {
            parked_since += 1;
        }
    }

    // Upward sweep: AOD rows above the anchor map to SLM rows above y0,
    // with the mirrored gap-capacity rule for parked rows. Ties must
    // break toward the *largest* y (the old scan walked y downward), so
    // the live-row slice is iterated in reverse.
    let mut first_y = y0 as isize;
    let mut parked_above = 0isize;
    for aod_row in (0..r0).rev() {
        let live_rows = live_rows_of(aod_row);
        let max_y = first_y - parked_above.max(1);
        let mut best: Option<(usize, usize)> = None;
        if max_y >= 0 {
            let end = live_rows.partition_point(|&y| y <= max_y as usize);
            for &y in live_rows[..end].iter().rev() {
                if let Some(count) = score(aod_row, y, &sol.active_cols, stage_matched) {
                    if count > 0 && best.map(|(c, _)| count > c).unwrap_or(true) {
                        best = Some((count, y));
                    }
                }
            }
        }
        if let Some((_, y)) = best {
            commit(&mut sol, stage_matched, aod_row, y, true);
            first_y = y as isize;
            parked_above = 0;
        } else {
            parked_above += 1;
        }
    }

    // Column extension: with the rows fixed, try to grow the column
    // pattern. A new column pair is legal iff every committed row's cross
    // lands on a fresh remaining edge (or on a missing atom). Candidates
    // stream from the incrementally-maintained oriented set; the filter
    // snapshot keeps the original semantics (candidates were collected
    // against the pre-extension matched set, while per-row legality uses
    // the live one).
    if !ctx.options.column_extension {
        return sol;
    }
    pre_extension.words.copy_from_slice(&stage_matched.words);
    // Distinct oriented edges can map onto the same `(home col, target
    // col)` pair; re-evaluating the pair with unchanged matcher state is
    // a no-op, so evaluations are version-stamped by the committed column
    // count (the only state — `active_cols` and `stage_matched` — that
    // the legality scan reads moves exactly when a pair commits). The
    // stamps live in a flat per-column-pair array: `usize::MAX` = never
    // evaluated.
    let slm_cols = ctx.config.slm().cols();
    evaluated.fill(usize::MAX);
    let mut version = sol.active_cols.pairs().len();
    let mut new_matches: Vec<(u32, u32)> = Vec::new();
    for &(src, tgt, hc, tc) in ctx.oriented {
        // Stamp test first: it is one load and rejects every repeat of an
        // already-evaluated pair, which is most of the stream. The order
        // swap with the matched-edge test cannot change the outcome —
        // the stamp is only *written* for unmatched proposing edges, so
        // a pair still gets its evaluation at the first unmatched
        // proposal, exactly as before.
        let (hc, tc) = (hc as usize, tc as usize);
        let stamp = &mut evaluated[hc * slm_cols + tc];
        if *stamp == version {
            continue;
        }
        if pre_extension.contains(src, tgt) {
            continue;
        }
        *stamp = version;
        if !sol.active_cols.can_insert(hc, tc) {
            continue;
        }
        new_matches.clear();
        let mut ok = true;
        for &(aod_row, y) in &sol.active_rows {
            if let (Some(u), Some(v)) = (qubit_at(aod_row, hc), qubit_at(y, tc)) {
                let e = norm(u, v);
                if ctx.edge_bits.fresh(stage_matched, u, v)
                    && !new_matches.iter().any(|&(a, b)| norm(a, b) == e)
                {
                    new_matches.push((u, v));
                } else {
                    ok = false;
                    break;
                }
            }
        }
        if ok && !new_matches.is_empty() {
            let inserted = sol.active_cols.insert(hc, tc);
            debug_assert!(inserted, "can_insert pre-checked");
            version = sol.active_cols.pairs().len();
            for &(u, v) in &new_matches {
                stage_matched.insert(u, v);
                sol.matched.push((u, v));
            }
        }
    }
    sol
}

/// Physical coordinates for a solved stage: active lines at `target + off`,
/// parked lines on midpoints (leading / in-between / trailing).
fn stage_coords(
    sol: &StageSolution,
    schedule: &Schedule,
    config: &FpqaConfig,
    used_rows: usize,
    used_cols: usize,
) -> (Vec<f64>, Vec<f64>) {
    let pitch = config.pitch_um();
    let off = OFFSET_MIN + 0.35;
    let half = pitch / 2.0;

    let build = |active: &[(usize, usize)], used: usize, total: usize| -> Vec<f64> {
        let mut coords = vec![f64::NAN; total];
        for &(h, t) in active {
            coords[h] = t as f64 * pitch + off;
        }
        // Leading parked lines: midpoints walking up/left from the first
        // active target.
        let first_active_home = active.first().map(|&(h, _)| h).unwrap_or(used);
        let first_active_target = active.first().map(|&(_, t)| t).unwrap_or(0);
        for (i, coord) in coords.iter_mut().enumerate().take(first_active_home) {
            let steps = first_active_home - i;
            *coord = first_active_target as f64 * pitch - half - (steps - 1) as f64 * pitch;
        }
        // In-between parked lines: midpoints after the left neighbour.
        for w in 0..active.len().saturating_sub(1) {
            let (lh, lt) = active[w];
            let (rh, _) = active[w + 1];
            for (j, i) in ((lh + 1)..rh).enumerate() {
                coords[i] = lt as f64 * pitch + half + j as f64 * pitch;
            }
        }
        // Trailing lines (parked and beyond `used`).
        let (last_home, last_target) = active.last().copied().unwrap_or((0, 0));
        let mut j = 0;
        for coord in coords.iter_mut().take(total).skip(last_home + 1) {
            if coord.is_nan() {
                *coord = last_target as f64 * pitch + half + (j + 1) as f64 * pitch;
                j += 1;
            }
        }
        debug_assert!(coords.iter().all(|c| !c.is_nan()));
        debug_assert!(coords.windows(2).all(|w| w[0] < w[1]), "{coords:?}");
        coords
    };

    (
        build(&sol.active_rows, used_rows, schedule.aod_rows),
        build(sol.active_cols.pairs(), used_cols, schedule.aod_cols),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_schedule;

    #[test]
    fn column_matcher_orders() {
        let mut active = PairMatcher::new();
        assert!(active.insert(1, 2));
        // Left of (1 -> 2): home 0, target must be < 2.
        assert!(active.insert(0, 0));
        assert_eq!(active.pairs(), &[(0, 0), (1, 2)]);
        // Inversion rejected.
        assert!(!active.insert(2, 1));
        // Append right.
        assert!(active.insert(3, 3));
        assert_eq!(active.len(), 3);
    }

    #[test]
    fn column_matcher_gap_capacity() {
        let mut active = PairMatcher::new();
        assert!(active.insert(0, 0));
        // home 3 leaves 2 parked columns between; target 1 offers only
        // 1 midpoint slot -> reject.
        assert!(!active.insert(3, 1));
        // target 3 offers 3 slots -> accept.
        assert!(active.insert(3, 3));
    }

    #[test]
    fn route_ring_graph() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let edges = [(0, 1), (1, 2), (2, 3), (0, 3)];
        let p = QaoaRouter::new().route_edges(4, &edges, 0.5, &cfg).unwrap();
        let report = validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        assert_eq!(report.leftover_ancillas, 0);
        // 2n create/recycle + one per edge.
        assert_eq!(p.stats().two_qubit_gates, 8 + 4);
        assert_eq!(p.schedule().num_ancillas, 4);
    }

    #[test]
    fn fig7_example_parallelism() {
        // Fig. 7: 12 qubits on 3x4; first stage executes 4 edges in
        // parallel: (0,1), (1,3), (4,9), (5,11).
        let cfg = FpqaConfig::for_qubits(12, 4);
        let edges = [(0u32, 1u32), (1, 3), (4, 9), (5, 11)];
        let p = QaoaRouter::new()
            .route_edges(12, &edges, 0.3, &cfg)
            .unwrap();
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        // create + 1 stage + recycle = 3 pulses.
        assert_eq!(
            p.stats().two_qubit_depth,
            3,
            "expected single-stage execution: {}",
            p.schedule()
        );
    }

    #[test]
    fn all_edges_execute_exactly_once() {
        let cfg = FpqaConfig::for_qubits(9, 3);
        let edges = [(0, 1), (0, 2), (1, 2), (3, 4), (4, 8), (2, 5), (6, 7)];
        let p = QaoaRouter::new().route_edges(9, &edges, 0.4, &cfg).unwrap();
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        let zz_count: usize = p
            .schedule()
            .rydberg_stages()
            .map(|ops| {
                ops.iter()
                    .filter(|o| matches!(o.kind, crate::RydbergKind::Zz(_)))
                    .count()
            })
            .sum();
        assert_eq!(zz_count, edges.len());
    }

    #[test]
    fn depth_grows_with_conflicts() {
        // A star graph forces serial stages: every edge shares qubit 0's
        // SLM atom as target or its ancilla as source.
        let cfg = FpqaConfig::for_qubits(9, 3);
        let star: Vec<(u32, u32)> = (1..9).map(|q| (0, q)).collect();
        let p = QaoaRouter::new().route_edges(9, &star, 0.1, &cfg).unwrap();
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        assert!(p.stats().two_qubit_depth > 3);
    }

    #[test]
    fn invalid_edges_rejected() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let r = QaoaRouter::new();
        assert!(matches!(
            r.route_edges(4, &[(0, 0)], 0.1, &cfg),
            Err(RouteError::InvalidEdge { .. })
        ));
        assert!(matches!(
            r.route_edges(4, &[(0, 7)], 0.1, &cfg),
            Err(RouteError::InvalidEdge { .. })
        ));
    }

    #[test]
    fn empty_graph_is_trivial() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let p = QaoaRouter::new().route_edges(4, &[], 0.1, &cfg).unwrap();
        assert_eq!(p.stats().two_qubit_gates, 0);
    }

    #[test]
    fn qaoa_round_wraps_cost_layer() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let edges = [(0, 1), (2, 3)];
        let p = QaoaRouter::new()
            .route_qaoa_round(4, &edges, 0.7, 0.3, &cfg)
            .unwrap();
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        // 4 H + mixers 4 RX + ancilla hadamards.
        assert!(p.stats().one_qubit_gates >= 8);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let p = QaoaRouter::new()
            .route_edges(4, &[(0, 1), (1, 0)], 0.2, &cfg)
            .unwrap();
        // Normalised: a single edge.
        assert_eq!(p.stats().two_qubit_gates, 8 + 1);
    }
}

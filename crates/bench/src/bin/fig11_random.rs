//! Fig. 11: random circuits — compiled 2Q gate count and circuit depth,
//! Q-Pilot (FPQA) vs the three fixed-topology baselines.
//!
//! Usage: `fig11_random [--sizes 5,10,20,50,100] [--factors 2,10] [--seed 7]`

use qpilot_bench::{
    arg_list, arg_num, compile_on_baselines, fpqa_config, geomean_ratio, route_workload, Table,
    BASELINE_LABELS,
};
use qpilot_core::compile::Workload;
use qpilot_workloads::random::{random_circuit, RandomCircuitConfig};

fn main() {
    let sizes = arg_list("--sizes", &[5, 10, 20, 50, 100]);
    let factors = arg_list("--factors", &[2, 10]);
    let seed = arg_num("--seed", 7u64);

    for &factor in &factors {
        println!("\n== Fig. 11: random circuits, #2Q = {factor} x #qubits ==");
        let mut table = Table::new(&[
            "qubits",
            "FPQA 2Q",
            "FPQA depth",
            "rect 2Q",
            "rect depth",
            "tri 2Q",
            "tri depth",
            "IBM 2Q",
            "IBM depth",
        ]);
        let mut ours_depth = Vec::new();
        let mut ours_gates = Vec::new();
        let mut best_base_depth = Vec::new();
        let mut best_base_gates = Vec::new();

        for &n in &sizes {
            let circuit = random_circuit(&RandomCircuitConfig::paper(n, factor as usize, seed));
            let cfg = fpqa_config(n);
            let program = route_workload(&Workload::circuit(circuit.clone()), &cfg);
            let stats = program.stats();
            let baselines = compile_on_baselines(&circuit);

            let mut row = vec![
                n.to_string(),
                stats.two_qubit_gates.to_string(),
                stats.two_qubit_depth.to_string(),
            ];
            let mut depths = Vec::new();
            let mut gates = Vec::new();
            for b in &baselines {
                match b {
                    Some(r) => {
                        row.push(r.two_qubit_gates.to_string());
                        row.push(r.two_qubit_depth.to_string());
                        gates.push(r.two_qubit_gates as f64);
                        depths.push(r.two_qubit_depth as f64);
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
            }
            table.row(row);
            if let (Some(bd), Some(bg)) = (
                depths.iter().copied().reduce(f64::min),
                gates.iter().copied().reduce(f64::min),
            ) {
                ours_depth.push(stats.two_qubit_depth as f64);
                ours_gates.push(stats.two_qubit_gates as f64);
                best_base_depth.push(bd);
                best_base_gates.push(bg);
            }
        }
        table.print();
        println!(
            "geomean vs best baseline: depth {:.2}x, 2Q gates {:.2}x  (paper: depth 1.4x, gates 4.2x at factor 10 / 1.5x, 3.9x at factor 2)",
            geomean_ratio(&ours_depth, &best_base_depth),
            geomean_ratio(&ours_gates, &best_base_gates),
        );
        let _ = BASELINE_LABELS;
    }
}

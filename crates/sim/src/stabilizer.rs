//! Stabilizer (tableau) simulation for full-scale Clifford verification.
//!
//! The dense simulator in [`crate::StateVector`] caps out around 20 qubits,
//! but most of what the routers emit — CNOT create/recycle layers, CZ
//! pulses, `ZZ(±π/2)` cost layers — is Clifford. This module implements an
//! Aaronson–Gottesman tableau over bit-packed rows, letting the test-suite
//! prove `compiled · reference⁻¹ = identity` (up to global phase) at the
//! paper's full 100-qubit scale.
//!
//! Supported gates: `H, X, Y, Z, S, S†, CX, CZ, SWAP`, plus `Rz/Rx/Ry` at
//! multiples of π/2 and `ZZ(±π/2)` (each Clifford up to a global phase).
//! Anything else returns [`NonCliffordGate`].

use std::error::Error;
use std::fmt;

use qpilot_circuit::{Circuit, Gate, Qubit};

/// Error: a gate outside the Clifford group (at the given angle).
#[derive(Debug, Clone, PartialEq)]
pub struct NonCliffordGate {
    /// Rendered offending gate.
    pub gate: String,
}

impl fmt::Display for NonCliffordGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gate {} is not Clifford", self.gate)
    }
}

impl Error for NonCliffordGate {}

/// Angle classification into multiples of π/2 (tolerance 1e-9).
fn quarter_turns(theta: f64) -> Option<u8> {
    let t = theta.rem_euclid(std::f64::consts::TAU);
    for k in 0..4u8 {
        if (t - k as f64 * std::f64::consts::FRAC_PI_2).abs() < 1e-9 {
            return Some(k);
        }
    }
    // Also accept 2π itself (rem_euclid boundary).
    if (t - std::f64::consts::TAU).abs() < 1e-9 {
        return Some(0);
    }
    None
}

/// An Aaronson–Gottesman stabilizer tableau over `n` qubits:
/// 2n generator rows (destabilizers then stabilizers), bit-packed.
#[derive(Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    words: usize,
    /// Row-major: for each of the 2n rows, `words` x-words then `words`
    /// z-words.
    rows: Vec<u64>,
    /// Sign bit per row (`true` = −1).
    phase: Vec<bool>,
}

impl Tableau {
    /// The identity tableau: destabilizer `i` = `X_i`, stabilizer `i` = `Z_i`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "tableau needs at least one qubit");
        let words = n.div_ceil(64);
        let mut t = Tableau {
            n,
            words,
            rows: vec![0; 2 * n * 2 * words],
            phase: vec![false; 2 * n],
        };
        for i in 0..n {
            *t.x_word_mut(i, i / 64) |= 1 << (i % 64); // destabilizer X_i
            *t.z_word_mut(n + i, i / 64) |= 1 << (i % 64); // stabilizer Z_i
        }
        t
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    fn row_base(&self, row: usize) -> usize {
        row * 2 * self.words
    }

    fn x_word(&self, row: usize, w: usize) -> u64 {
        self.rows[self.row_base(row) + w]
    }

    fn z_word(&self, row: usize, w: usize) -> u64 {
        self.rows[self.row_base(row) + self.words + w]
    }

    fn x_word_mut(&mut self, row: usize, w: usize) -> &mut u64 {
        let b = self.row_base(row);
        &mut self.rows[b + w]
    }

    fn z_word_mut(&mut self, row: usize, w: usize) -> &mut u64 {
        let b = self.row_base(row) + self.words;
        &mut self.rows[b + w]
    }

    fn x_bit(&self, row: usize, q: usize) -> bool {
        self.x_word(row, q / 64) >> (q % 64) & 1 == 1
    }

    fn z_bit(&self, row: usize, q: usize) -> bool {
        self.z_word(row, q / 64) >> (q % 64) & 1 == 1
    }

    /// Hadamard on `q`: swap X/Z bits; phase flips on rows where both set.
    fn h(&mut self, q: usize) {
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            let x = self.x_word(row, w) & m;
            let z = self.z_word(row, w) & m;
            if x != 0 && z != 0 {
                self.phase[row] = !self.phase[row];
            }
            // Swap the bits.
            if (x != 0) != (z != 0) {
                *self.x_word_mut(row, w) ^= m;
                *self.z_word_mut(row, w) ^= m;
            }
        }
    }

    /// Phase gate on `q`: `z ^= x`, phase flips where both set.
    fn s(&mut self, q: usize) {
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            let x = self.x_word(row, w) & m;
            let z = self.z_word(row, w) & m;
            if x != 0 && z != 0 {
                self.phase[row] = !self.phase[row];
            }
            if x != 0 {
                *self.z_word_mut(row, w) ^= m;
            }
        }
    }

    /// Pauli-Z on `q`: phase flips on rows with X support there.
    fn z_gate(&mut self, q: usize) {
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            if self.x_word(row, w) & m != 0 {
                self.phase[row] = !self.phase[row];
            }
        }
    }

    /// Pauli-X on `q`: phase flips on rows with Z support there.
    fn x_gate(&mut self, q: usize) {
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            if self.z_word(row, w) & m != 0 {
                self.phase[row] = !self.phase[row];
            }
        }
    }

    /// CNOT control `c` target `t` (standard CHP update).
    fn cx(&mut self, c: usize, t: usize) {
        let (wc, mc) = (c / 64, 1u64 << (c % 64));
        let (wt, mt) = (t / 64, 1u64 << (t % 64));
        for row in 0..2 * self.n {
            let xc = self.x_word(row, wc) & mc != 0;
            let zc = self.z_word(row, wc) & mc != 0;
            let xt = self.x_word(row, wt) & mt != 0;
            let zt = self.z_word(row, wt) & mt != 0;
            if xc && zt && (xt == zc) {
                self.phase[row] = !self.phase[row];
            }
            if xc {
                *self.x_word_mut(row, wt) ^= mt;
            }
            if zt {
                *self.z_word_mut(row, wc) ^= mc;
            }
        }
    }

    /// Applies a gate.
    ///
    /// # Errors
    ///
    /// [`NonCliffordGate`] for rotations off the π/2 grid and `T`/`T†`.
    pub fn apply(&mut self, gate: &Gate) -> Result<(), NonCliffordGate> {
        let non_clifford = || NonCliffordGate {
            gate: gate.to_string(),
        };
        let q = |qubit: Qubit| qubit.index();
        match *gate {
            Gate::H(a) => self.h(q(a)),
            Gate::X(a) => self.x_gate(q(a)),
            Gate::Y(a) => {
                self.z_gate(q(a));
                self.x_gate(q(a));
            }
            Gate::Z(a) => self.z_gate(q(a)),
            Gate::S(a) => self.s(q(a)),
            Gate::Sdg(a) => {
                self.s(q(a));
                self.z_gate(q(a));
            }
            Gate::T(_) | Gate::Tdg(_) => return Err(non_clifford()),
            Gate::Rz(a, t) => match quarter_turns(t).ok_or_else(non_clifford)? {
                0 => {}
                1 => self.s(q(a)),
                2 => self.z_gate(q(a)),
                _ => {
                    self.s(q(a));
                    self.z_gate(q(a));
                }
            },
            Gate::Rx(a, t) => {
                if quarter_turns(t).is_none() {
                    return Err(non_clifford());
                }
                self.h(q(a));
                self.apply(&Gate::Rz(a, t))?;
                self.h(q(a));
            }
            Gate::Ry(a, t) => {
                if quarter_turns(t).is_none() {
                    return Err(non_clifford());
                }
                // Ry = S · Rx · S†.
                self.s(q(a));
                self.z_gate(q(a)); // S† as S·Z applied right-to-left below
                self.h(q(a));
                self.apply(&Gate::Rz(a, t))?;
                self.h(q(a));
                self.s(q(a));
            }
            Gate::Cx(c, t) => self.cx(q(c), q(t)),
            Gate::Cz(a, b) => {
                self.h(q(b));
                self.cx(q(a), q(b));
                self.h(q(b));
            }
            Gate::Swap(a, b) => {
                self.cx(q(a), q(b));
                self.cx(q(b), q(a));
                self.cx(q(a), q(b));
            }
            Gate::Zz(a, b, t) => match quarter_turns(t).ok_or_else(non_clifford)? {
                0 => {}
                // ZZ(π/2) ∝ (S⊗S)·CZ ; ZZ(π) ∝ Z⊗Z ; ZZ(3π/2) ∝ (S†⊗S†)·CZ.
                1 => {
                    self.apply(&Gate::Cz(a, b))?;
                    self.s(q(a));
                    self.s(q(b));
                }
                2 => {
                    self.z_gate(q(a));
                    self.z_gate(q(b));
                }
                _ => {
                    self.apply(&Gate::Cz(a, b))?;
                    self.s(q(a));
                    self.z_gate(q(a));
                    self.s(q(b));
                    self.z_gate(q(b));
                }
            },
        }
        Ok(())
    }

    /// Applies every gate of a circuit.
    ///
    /// # Errors
    ///
    /// [`NonCliffordGate`] on the first unsupported gate.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), NonCliffordGate> {
        assert!(
            circuit.num_qubits() as usize <= self.n,
            "circuit wider than tableau"
        );
        for g in circuit.iter() {
            self.apply(g)?;
        }
        Ok(())
    }

    /// Returns `true` if the tableau is the identity (phases included),
    /// i.e. the applied circuit acts as the identity up to global phase.
    pub fn is_identity(&self) -> bool {
        *self == Tableau::identity(self.n)
    }

    /// Returns `true` if the applied circuit acts as the identity (up to
    /// global phase) on the subspace where every *ancilla* qubit
    /// (`num_data..`) is `|0⟩` — the contract of flying-ancilla
    /// compilation.
    ///
    /// Sufficient conditions checked per generator image `C P C†`:
    ///
    /// * data `X_d` → `X_d` times ancilla-`Z`s, sign `+` (acts as `X_d` on
    ///   the subspace);
    /// * data `Z_d` → `Z_d` times ancilla-`Z`s, sign `+`;
    /// * ancilla `Z_a` → a product of ancilla-`Z`s with sign `+` (the
    ///   subspace maps onto itself);
    /// * ancilla `X_a` images are unconstrained.
    ///
    /// Together these force the restriction of the circuit to the subspace
    /// to commute with the full logical Pauli algebra, hence be a global
    /// phase.
    pub fn is_identity_on_data(&self, num_data: usize) -> bool {
        assert!(num_data <= self.n, "data register wider than tableau");
        let data_x_clear = |row: usize, except: Option<usize>| -> bool {
            (0..num_data).all(|d| Some(d) == except || !self.x_bit(row, d))
        };
        let data_z_clear = |row: usize, except: Option<usize>| -> bool {
            (0..num_data).all(|d| Some(d) == except || !self.z_bit(row, d))
        };
        let ancilla_x_clear =
            |row: usize| -> bool { (num_data..self.n).all(|a| !self.x_bit(row, a)) };

        for d in 0..num_data {
            // Image of X_d: exactly X_d on data, optional ancilla Zs, +.
            let row = d;
            if self.phase[row]
                || !self.x_bit(row, d)
                || self.z_bit(row, d)
                || !data_x_clear(row, Some(d))
                || !data_z_clear(row, None)
                || !ancilla_x_clear(row)
            {
                return false;
            }
            // Image of Z_d: exactly Z_d on data, optional ancilla Zs, +.
            let row = self.n + d;
            if self.phase[row]
                || !self.z_bit(row, d)
                || !data_x_clear(row, None)
                || !data_z_clear(row, Some(d))
                || !ancilla_x_clear(row)
            {
                return false;
            }
        }
        for a in num_data..self.n {
            // Image of Z_a: a +-signed product of ancilla Zs.
            let row = self.n + a;
            if self.phase[row]
                || !data_x_clear(row, None)
                || !data_z_clear(row, None)
                || !ancilla_x_clear(row)
            {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for Tableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tableau[{} qubits]", self.n)?;
        for row in 0..2 * self.n {
            let kind = if row < self.n { "d" } else { "s" };
            write!(
                f,
                "  {kind}{:<3} {}",
                row % self.n,
                if self.phase[row] { '-' } else { '+' }
            )?;
            for q in 0..self.n {
                let c = match (self.x_bit(row, q), self.z_bit(row, q)) {
                    (false, false) => 'I',
                    (true, false) => 'X',
                    (false, true) => 'Z',
                    (true, true) => 'Y',
                };
                write!(f, "{c}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Checks that a flying-ancilla compiled circuit implements `reference` on
/// the data register (ancillas `num_data..` starting and ending in `|0⟩`),
/// up to global phase — the large-scale Clifford analogue of
/// [`crate::equiv::verify_compiled`].
///
/// # Errors
///
/// [`NonCliffordGate`] if either circuit leaves the Clifford group.
pub fn clifford_verify_compiled(
    compiled: &Circuit,
    reference: &Circuit,
) -> Result<bool, NonCliffordGate> {
    let num_data = reference.num_qubits() as usize;
    let n = (compiled.num_qubits() as usize).max(num_data).max(1);
    let mut t = Tableau::identity(n);
    t.apply_circuit(compiled)?;
    t.apply_circuit(&reference.inverse())?;
    Ok(t.is_identity_on_data(num_data))
}

/// Checks Clifford-circuit equivalence up to global phase by applying
/// `a · b⁻¹` to the identity tableau.
///
/// # Errors
///
/// [`NonCliffordGate`] if either circuit leaves the Clifford group.
///
/// # Example
///
/// ```
/// use qpilot_circuit::Circuit;
/// use qpilot_sim::stabilizer::clifford_equivalent;
///
/// let mut cx = Circuit::new(2);
/// cx.cx(0, 1);
/// let mut hczh = Circuit::new(2);
/// hczh.h(1).cz(0, 1).h(1);
/// assert!(clifford_equivalent(&cx, &hczh).unwrap());
/// ```
pub fn clifford_equivalent(a: &Circuit, b: &Circuit) -> Result<bool, NonCliffordGate> {
    let n = a.num_qubits().max(b.num_qubits()) as usize;
    let mut t = Tableau::identity(n.max(1));
    t.apply_circuit(a)?;
    t.apply_circuit(&b.inverse())?;
    Ok(t.is_identity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateVector;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn identity_tableau_is_identity() {
        assert!(Tableau::identity(5).is_identity());
        assert!(Tableau::identity(130).is_identity()); // multi-word
    }

    #[test]
    fn h_squared_is_identity() {
        let mut t = Tableau::identity(3);
        t.apply(&Gate::H(q(1))).unwrap();
        assert!(!t.is_identity());
        t.apply(&Gate::H(q(1))).unwrap();
        assert!(t.is_identity());
    }

    #[test]
    fn s_fourth_power_is_identity() {
        let mut t = Tableau::identity(1);
        for _ in 0..4 {
            t.apply(&Gate::S(q(0))).unwrap();
        }
        assert!(t.is_identity());
    }

    #[test]
    fn s_squared_is_z() {
        let mut a = Tableau::identity(1);
        a.apply(&Gate::S(q(0))).unwrap();
        a.apply(&Gate::S(q(0))).unwrap();
        let mut b = Tableau::identity(1);
        b.apply(&Gate::Z(q(0))).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sdg_inverts_s() {
        let mut t = Tableau::identity(1);
        t.apply(&Gate::S(q(0))).unwrap();
        t.apply(&Gate::Sdg(q(0))).unwrap();
        assert!(t.is_identity());
    }

    #[test]
    fn cx_conjugation_rules() {
        // CX: X_c -> X_c X_t, Z_t -> Z_c Z_t.
        let mut t = Tableau::identity(2);
        t.apply(&Gate::Cx(q(0), q(1))).unwrap();
        // Destabilizer row 0 (X_0) must now be X_0 X_1.
        assert!(t.x_bit(0, 0) && t.x_bit(0, 1));
        // Stabilizer row for Z_1 must be Z_0 Z_1.
        assert!(t.z_bit(3, 0) && t.z_bit(3, 1));
    }

    #[test]
    fn cz_equals_h_cx_h() {
        let mut a = Circuit::new(2);
        a.cz(0, 1);
        let mut b = Circuit::new(2);
        b.h(1).cx(0, 1).h(1);
        assert!(clifford_equivalent(&a, &b).unwrap());
    }

    #[test]
    fn swap_works() {
        let mut a = Circuit::new(2);
        a.swap(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1).cx(1, 0).cx(0, 1);
        assert!(clifford_equivalent(&a, &b).unwrap());
    }

    #[test]
    fn zz_quarter_matches_dense_simulator() {
        use std::f64::consts::FRAC_PI_2;
        for theta in [FRAC_PI_2, -FRAC_PI_2, 2.0 * FRAC_PI_2, 3.0 * FRAC_PI_2] {
            // Tableau route.
            let mut zz = Circuit::new(2);
            zz.zz(0, 1, theta);
            // Dense-simulator cross-check via equivalence with itself
            // decomposed: cx rz cx.
            let mut ref_c = Circuit::new(2);
            ref_c.cx(0, 1).rz(1, theta).cx(0, 1);
            assert!(clifford_equivalent(&zz, &ref_c).unwrap(), "theta = {theta}");
            // And both match the dense simulator up to global phase.
            let mut sv1 = StateVector::random(2, 8);
            let mut sv2 = sv1.clone();
            sv1.apply_circuit(&zz);
            sv2.apply_circuit(&ref_c);
            assert!(sv1.fidelity(&sv2) > 1.0 - 1e-10);
        }
    }

    #[test]
    fn rotations_on_grid_are_clifford() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let mut t = Tableau::identity(1);
        t.apply(&Gate::Rz(q(0), FRAC_PI_2)).unwrap();
        t.apply(&Gate::Rx(q(0), PI)).unwrap();
        t.apply(&Gate::Ry(q(0), -FRAC_PI_2)).unwrap();
    }

    #[test]
    fn off_grid_rotation_rejected() {
        let mut t = Tableau::identity(1);
        assert!(t.apply(&Gate::Rz(q(0), 0.3)).is_err());
        assert!(t.apply(&Gate::T(q(0))).is_err());
        let mut c = Circuit::new(1);
        c.t(0);
        assert!(clifford_equivalent(&c, &c).is_err());
    }

    #[test]
    fn ry_matches_dense_simulator() {
        use std::f64::consts::FRAC_PI_2;
        for k in 0..4 {
            let theta = k as f64 * FRAC_PI_2;
            let mut c = Circuit::new(1);
            c.ry(0, theta);
            // S H Rz H S† Z ... verify against dense sim by equivalence
            // with itself through the tableau: apply c then c.inverse().
            let mut t = Tableau::identity(1);
            t.apply_circuit(&c).unwrap();
            t.apply_circuit(&c.inverse()).unwrap();
            assert!(t.is_identity(), "theta = {theta}");
            // Cross-check the Ry = S · Rx · S† decomposition against the
            // dense simulator (circuit order applies S† first).
            let mut direct = StateVector::random(1, k as u64);
            let mut via = direct.clone();
            direct.apply_circuit(&c);
            let mut decomp = Circuit::new(1);
            decomp.sdg(0).h(0).rz(0, theta).h(0).s(0);
            via.apply_circuit(&decomp);
            assert!(direct.fidelity(&via) > 1.0 - 1e-10, "theta = {theta}");
        }
    }

    #[test]
    fn random_clifford_circuit_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 80u32;
        let mut c = Circuit::new(n);
        for _ in 0..400 {
            match rng.gen_range(0..5) {
                0 => {
                    c.h(rng.gen_range(0..n));
                }
                1 => {
                    c.s(rng.gen_range(0..n));
                }
                2 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    c.cx(a, b);
                }
                3 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    c.cz(a, b);
                }
                _ => {
                    c.sdg(rng.gen_range(0..n));
                }
            }
        }
        let mut t = Tableau::identity(n as usize);
        t.apply_circuit(&c).unwrap();
        assert!(!t.is_identity());
        t.apply_circuit(&c.inverse()).unwrap();
        assert!(t.is_identity());
    }

    #[test]
    fn tableau_agrees_with_dense_on_small_cliffords() {
        // Exhaustive-ish: random 4-qubit Clifford circuits, tableau
        // equivalence must match dense-simulator equivalence.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..20 {
            let mut a = Circuit::new(4);
            for _ in 0..12 {
                match rng.gen_range(0..4) {
                    0 => {
                        a.h(rng.gen_range(0..4));
                    }
                    1 => {
                        a.s(rng.gen_range(0..4));
                    }
                    2 => {
                        let x = rng.gen_range(0..4u32);
                        let y = (x + rng.gen_range(1..4u32)) % 4;
                        a.cx(x, y);
                    }
                    _ => {
                        let x = rng.gen_range(0..4u32);
                        let y = (x + rng.gen_range(1..4u32)) % 4;
                        a.cz(x, y);
                    }
                }
            }
            // b = a with one extra gate half the time.
            let mut b = a.clone();
            let tweaked = trial % 2 == 0;
            if tweaked {
                b.z(rng.gen_range(0..4));
            }
            let tableau_eq = clifford_equivalent(&a, &b).unwrap();
            let dense_eq = crate::equiv::random_state_fidelity(&a, &b, trial as u64) > 1.0 - 1e-9;
            assert_eq!(tableau_eq, dense_eq, "trial {trial}");
        }
    }

    #[test]
    fn flying_ancilla_identity_on_data_subspace() {
        // cx(0,2) cz(2,1) cx(0,2) == cz(0,1) on the ancilla-|0> subspace
        // but NOT as a full 3-qubit unitary.
        let mut fly = Circuit::new(3);
        fly.cx(0, 2).cz(2, 1).cx(0, 2);
        let mut reference = Circuit::new(2);
        reference.cz(0, 1);
        assert!(clifford_verify_compiled(&fly, &reference).unwrap());
        // The strict full-unitary check must reject it.
        let wide_ref = reference.remapped(3, |q| q);
        assert!(!clifford_equivalent(&fly, &wide_ref).unwrap());
    }

    #[test]
    fn dirty_ancilla_rejected_on_data_subspace() {
        // Forgetting the recycle CNOT leaves the ancilla entangled.
        let mut fly = Circuit::new(3);
        fly.cx(0, 2).cz(2, 1);
        let mut reference = Circuit::new(2);
        reference.cz(0, 1);
        assert!(!clifford_verify_compiled(&fly, &reference).unwrap());
    }

    #[test]
    fn wrong_data_unitary_rejected_on_data_subspace() {
        let mut fly = Circuit::new(3);
        fly.cx(0, 2).cz(2, 1).cx(0, 2);
        let mut wrong = Circuit::new(2);
        wrong.cz(0, 1);
        wrong.z(0);
        assert!(!clifford_verify_compiled(&fly, &wrong).unwrap());
    }

    #[test]
    fn transversal_fanout_theorem_at_scale() {
        // §2.2 with 60 data qubits and 60 ancillas: a ring of CZs routed
        // through transversal copies in one step.
        let n = 60u32;
        let mut reference = Circuit::new(n);
        for i in 0..n {
            reference.cz(i, (i + 1) % n);
        }
        let mut compiled = Circuit::new(2 * n);
        for i in 0..n {
            compiled.cx(i, n + i);
        }
        for i in 0..n {
            compiled.cz(n + i, (i + 1) % n);
        }
        for i in 0..n {
            compiled.cx(i, n + i);
        }
        assert!(clifford_verify_compiled(&compiled, &reference).unwrap());
    }

    #[test]
    fn debug_rendering_shows_paulis() {
        let mut t = Tableau::identity(2);
        t.apply(&Gate::Cx(q(0), q(1))).unwrap();
        let s = format!("{t:?}");
        assert!(s.contains("XX"));
    }
}

//! Gate dependency DAG and front-layer extraction.
//!
//! Routers consume circuits layer by layer: at every step they ask for the
//! *front layer* — the set of not-yet-executed gates none of whose
//! predecessors (earlier gates sharing a qubit) are pending. [`Frontier`]
//! maintains that set incrementally in O(1) amortised per executed gate.

use std::fmt;

use crate::{Circuit, Gate};

/// Identifier of a gate inside a [`Circuit`]: its index in program order.
pub type GateId = usize;

/// Static dependency DAG of a circuit.
///
/// Gate `a` precedes gate `b` iff `a` appears earlier in program order and
/// they share at least one qubit *with no intervening gate on that qubit*
/// (the DAG stores the transitive reduction along each qubit's wire).
///
/// Adjacency is stored in compressed sparse row (CSR) form — two flat
/// arrays plus offsets per direction — so building the DAG performs four
/// allocations total instead of two `Vec`s per gate, and neighbour lists
/// are contiguous in memory for the routers' hot front-layer loops.
#[derive(Debug, Clone)]
pub struct DependencyDag {
    num_gates: usize,
    preds: Vec<GateId>,
    pred_off: Vec<usize>,
    succs: Vec<GateId>,
    succ_off: Vec<usize>,
}

impl DependencyDag {
    /// Builds the dependency DAG of `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut last_on: Vec<Option<GateId>> = vec![None; circuit.num_qubits() as usize];

        // Pass 1: count edges per gate. A gate has at most two operands,
        // so "dedupe a predecessor met through both wires" reduces to
        // comparing against the first wire's predecessor.
        let mut pred_off = vec![0usize; n + 1];
        let mut succ_off = vec![0usize; n + 1];
        for (i, g) in circuit.iter().enumerate() {
            let mut first_pred: Option<GateId> = None;
            for q in g.operands() {
                if let Some(p) = last_on[q.index()] {
                    if first_pred != Some(p) {
                        pred_off[i + 1] += 1;
                        succ_off[p + 1] += 1;
                        first_pred.get_or_insert(p);
                    }
                }
                last_on[q.index()] = Some(i);
            }
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
            succ_off[i + 1] += succ_off[i];
        }

        // Pass 2: fill. Iterating gates in program order reproduces the
        // per-list orders of the naive construction (predecessors in
        // operand order, successors in ascending gate id).
        let mut preds = vec![0 as GateId; pred_off[n]];
        let mut succs = vec![0 as GateId; succ_off[n]];
        let mut pred_cur = pred_off.clone();
        let mut succ_cur = succ_off.clone();
        last_on.fill(None);
        for (i, g) in circuit.iter().enumerate() {
            let mut first_pred: Option<GateId> = None;
            for q in g.operands() {
                if let Some(p) = last_on[q.index()] {
                    if first_pred != Some(p) {
                        preds[pred_cur[i]] = p;
                        pred_cur[i] += 1;
                        succs[succ_cur[p]] = i;
                        succ_cur[p] += 1;
                        first_pred.get_or_insert(p);
                    }
                }
                last_on[q.index()] = Some(i);
            }
        }
        DependencyDag {
            num_gates: n,
            preds,
            pred_off,
            succs,
            succ_off,
        }
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.num_gates
    }

    /// Returns `true` if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.num_gates == 0
    }

    /// Direct predecessors of gate `id`.
    pub fn predecessors(&self, id: GateId) -> &[GateId] {
        &self.preds[self.pred_off[id]..self.pred_off[id + 1]]
    }

    /// Direct successors of gate `id`.
    pub fn successors(&self, id: GateId) -> &[GateId] {
        &self.succs[self.succ_off[id]..self.succ_off[id + 1]]
    }

    /// The source layer: gates with no predecessors.
    pub fn sources(&self) -> Vec<GateId> {
        (0..self.len())
            .filter(|&i| self.predecessors(i).is_empty())
            .collect()
    }

    /// Longest-path depth of each gate (source gates have depth 0).
    ///
    /// Because gate ids are in program order (a topological order), one
    /// forward sweep suffices.
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.len()];
        for i in 0..self.len() {
            for &p in self.predecessors(i) {
                depth[i] = depth[i].max(depth[p] + 1);
            }
        }
        depth
    }
}

/// Incremental front-layer tracker over a [`DependencyDag`].
///
/// # Example
///
/// ```
/// use qpilot_circuit::{Circuit, Frontier};
///
/// let mut c = Circuit::new(3);
/// c.cz(0, 1).cz(1, 2).cz(0, 2);
/// let mut fr = Frontier::new(&c);
/// assert_eq!(fr.front_layer(), &[0]);
/// fr.execute(0);
/// assert_eq!(fr.front_layer(), &[1]);
/// ```
#[derive(Debug, Clone)]
pub struct Frontier {
    dag: DependencyDag,
    pending_preds: Vec<usize>,
    executed: Vec<bool>,
    front: Vec<GateId>,
    remaining: usize,
}

impl Frontier {
    /// Builds a frontier over the circuit's dependency DAG.
    pub fn new(circuit: &Circuit) -> Self {
        Self::from_dag(DependencyDag::new(circuit))
    }

    /// Builds a frontier from an existing DAG.
    pub fn from_dag(dag: DependencyDag) -> Self {
        let n = dag.len();
        let pending_preds: Vec<usize> = (0..n).map(|i| dag.predecessors(i).len()).collect();
        let mut front: Vec<GateId> = (0..n).filter(|&i| pending_preds[i] == 0).collect();
        front.sort_unstable();
        Frontier {
            dag,
            pending_preds,
            executed: vec![false; n],
            front,
            remaining: n,
        }
    }

    /// The current front layer (gates ready to execute), in program order.
    pub fn front_layer(&self) -> &[GateId] {
        &self.front
    }

    /// Number of gates not yet executed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Returns `true` once every gate has been executed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Returns `true` if `id` has been executed.
    pub fn is_executed(&self, id: GateId) -> bool {
        self.executed[id]
    }

    /// Marks `id` as executed, promoting newly-ready successors into the
    /// front layer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not currently in the front layer (executing a gate
    /// whose dependencies are pending would corrupt the schedule).
    pub fn execute(&mut self, id: GateId) {
        let pos = self
            .front
            .iter()
            .position(|&g| g == id)
            .expect("gate executed out of dependency order");
        self.front.remove(pos);
        self.executed[id] = true;
        self.remaining -= 1;
        // Disjoint field borrows: the successor slice lives in `dag` while
        // `pending_preds` and `front` are updated, so no copy is needed.
        let Frontier {
            dag,
            pending_preds,
            front,
            ..
        } = self;
        for &s in dag.successors(id) {
            pending_preds[s] -= 1;
            if pending_preds[s] == 0 {
                let insert_at = front.partition_point(|&g| g < s);
                front.insert(insert_at, s);
            }
        }
    }

    /// Executes a batch of front-layer gates in one pass, appending the
    /// newly-ready successors to `promoted` (cleared first, returned in
    /// ascending id order).
    ///
    /// Equivalent to calling [`Frontier::execute`] for each id, but the
    /// front layer is compacted once instead of per gate and no
    /// intermediate lookups re-scan it — the routers' batch hot path.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is not an ascending subset of the current front
    /// layer.
    pub fn execute_batch(&mut self, ids: &[GateId], promoted: &mut Vec<GateId>) {
        promoted.clear();
        if ids.is_empty() {
            return;
        }
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "batch must be ascending"
        );
        // Remove the batch from the (sorted) front with one two-pointer
        // compaction pass.
        let mut batch_at = 0usize;
        let mut kept = 0usize;
        for read in 0..self.front.len() {
            let g = self.front[read];
            if batch_at < ids.len() && ids[batch_at] == g {
                batch_at += 1;
            } else {
                self.front[kept] = g;
                kept += 1;
            }
        }
        assert!(
            batch_at == ids.len(),
            "gate executed out of dependency order"
        );
        self.front.truncate(kept);
        self.remaining -= ids.len();
        let Frontier {
            dag,
            pending_preds,
            executed,
            ..
        } = self;
        for &id in ids {
            executed[id] = true;
            for &s in dag.successors(id) {
                pending_preds[s] -= 1;
                if pending_preds[s] == 0 {
                    promoted.push(s);
                }
            }
        }
        promoted.sort_unstable();
        for &s in promoted.iter() {
            let insert_at = self.front.partition_point(|&g| g < s);
            self.front.insert(insert_at, s);
        }
    }

    /// Executes every gate currently in the front layer, returning them.
    pub fn execute_front(&mut self) -> Vec<GateId> {
        let layer = self.front.clone();
        for &id in &layer {
            self.execute(id);
        }
        layer
    }

    /// Borrow the underlying DAG.
    pub fn dag(&self) -> &DependencyDag {
        &self.dag
    }
}

/// A lean one-pass frontier for hot route loops.
///
/// [`DependencyDag`] is the general API: CSR predecessor *and* successor
/// lists, built in two passes. A router's inner loop needs much less —
/// successor sets (every gate has at most two operands, hence at most two
/// direct successors after same-gate dedup), pending-predecessor counts,
/// and the initial front layer — all derivable in a single pass over the
/// gates with fixed-size per-gate storage. Promotion semantics are
/// identical to [`Frontier::execute_batch`] (property-tested:
/// the generic router's schedules stay byte-identical to the frozen
/// reference, which walks the naive DAG).
#[derive(Debug, Clone)]
pub struct CompactFrontier {
    /// Up to two direct successors per gate.
    succs: Vec<[GateId; 2]>,
    succ_len: Vec<u8>,
    pending: Vec<u32>,
    executed: Vec<bool>,
    initial_front: Vec<GateId>,
    remaining: usize,
}

impl CompactFrontier {
    /// Builds the frontier in one pass over the circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut succs = vec![[0 as GateId; 2]; n];
        let mut succ_len = vec![0u8; n];
        let mut pending = vec![0u32; n];
        let mut initial_front = Vec::new();
        let mut last_on: Vec<Option<GateId>> = vec![None; circuit.num_qubits() as usize];
        for (i, g) in circuit.iter().enumerate() {
            let mut first_pred: Option<GateId> = None;
            for q in g.operands() {
                if let Some(p) = last_on[q.index()] {
                    if first_pred != Some(p) {
                        succs[p][succ_len[p] as usize] = i;
                        succ_len[p] += 1;
                        pending[i] += 1;
                        first_pred.get_or_insert(p);
                    }
                }
                last_on[q.index()] = Some(i);
            }
            // Predecessors precede `i`, so the count is final here.
            if pending[i] == 0 {
                initial_front.push(i);
            }
        }
        CompactFrontier {
            succs,
            succ_len,
            pending,
            executed: vec![false; n],
            initial_front,
            remaining: n,
        }
    }

    /// The front layer at construction time (ascending gate ids). Not
    /// updated by execution — callers keep their own ready lists.
    pub fn initial_front(&self) -> &[GateId] {
        &self.initial_front
    }

    /// Number of gates not yet executed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Returns `true` once every gate has been executed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Executes a batch of ready gates (ascending), collecting the
    /// newly-ready successors into `promoted` (ascending).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a gate is not ready or the batch is not
    /// ascending.
    #[inline]
    pub fn execute_batch(&mut self, ids: &[GateId], promoted: &mut Vec<GateId>) {
        promoted.clear();
        if ids.is_empty() {
            return;
        }
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "batch must be ascending"
        );
        self.remaining -= ids.len();
        for &id in ids {
            debug_assert!(
                self.pending[id] == 0 && !self.executed[id],
                "gate executed out of dependency order"
            );
            self.executed[id] = true;
            for k in 0..self.succ_len[id] as usize {
                let s = self.succs[id][k];
                self.pending[s] -= 1;
                if self.pending[s] == 0 {
                    promoted.push(s);
                }
            }
        }
        promoted.sort_unstable();
    }

    /// [`CompactFrontier::execute_batch`], with the promoted successors
    /// partitioned by `left` as they surface: ids where `left` returns
    /// `true` go to `promoted_left`, the rest to `promoted_right`, each
    /// ascending. Routers keep separate 1Q/2Q ready lists, so splitting
    /// here removes the re-scan (and the re-push of every promotion) from
    /// the wave loop; two short sorts also beat one mixed sort. Promotion
    /// order and contents are identical to `execute_batch` followed by a
    /// partition (differentially tested against the frozen reference
    /// router).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a gate is not ready or the batch is not
    /// ascending.
    #[inline]
    pub fn execute_batch_split<F: Fn(GateId) -> bool>(
        &mut self,
        ids: &[GateId],
        left: F,
        promoted_left: &mut Vec<GateId>,
        promoted_right: &mut Vec<GateId>,
    ) {
        promoted_left.clear();
        promoted_right.clear();
        if ids.is_empty() {
            return;
        }
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "batch must be ascending"
        );
        self.remaining -= ids.len();
        for &id in ids {
            debug_assert!(
                self.pending[id] == 0 && !self.executed[id],
                "gate executed out of dependency order"
            );
            self.executed[id] = true;
            for k in 0..self.succ_len[id] as usize {
                let s = self.succs[id][k];
                self.pending[s] -= 1;
                if self.pending[s] == 0 {
                    if left(s) {
                        promoted_left.push(s);
                    } else {
                        promoted_right.push(s);
                    }
                }
            }
        }
        promoted_left.sort_unstable();
        promoted_right.sort_unstable();
    }
}

impl fmt::Display for Frontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frontier[{} remaining, front = {:?}]",
            self.remaining, self.front
        )
    }
}

/// Splits the current front layer of `circuit` into single- and two-qubit
/// gate ids — the shape routers want (1Q gates run on the Raman laser first,
/// 2Q gates are scheduled onto Rydberg stages).
pub fn split_front_layer(circuit: &Circuit, front: &[GateId]) -> (Vec<GateId>, Vec<GateId>) {
    let gates = circuit.gates();
    let mut one_q = Vec::new();
    let mut two_q = Vec::new();
    for &id in front {
        if gates[id].is_two_qubit() {
            two_q.push(id);
        } else {
            one_q.push(id);
        }
    }
    (one_q, two_q)
}

/// Convenience: the gate objects of a layer.
pub fn layer_gates<'c>(circuit: &'c Circuit, layer: &[GateId]) -> Vec<&'c Gate> {
    layer.iter().map(|&id| &circuit.gates()[id]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Circuit {
        let mut c = Circuit::new(3);
        c.cz(0, 1).cz(1, 2).cz(2, 0);
        c
    }

    #[test]
    fn dag_edges_follow_wires() {
        let c = triangle();
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.predecessors(0), &[] as &[GateId]);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1, 0]);
        assert_eq!(dag.successors(0), &[1, 2]);
    }

    #[test]
    fn dag_dedupes_shared_predecessor() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(0, 1);
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn sources_and_depths() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3).cz(1, 2);
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.sources(), vec![0, 1]);
        assert_eq!(dag.depths(), vec![0, 0, 1]);
    }

    #[test]
    fn frontier_walks_triangle() {
        let c = triangle();
        let mut fr = Frontier::new(&c);
        assert_eq!(fr.front_layer(), &[0]);
        fr.execute(0);
        assert_eq!(fr.front_layer(), &[1]);
        fr.execute(1);
        assert_eq!(fr.front_layer(), &[2]);
        fr.execute(2);
        assert!(fr.is_done());
    }

    #[test]
    fn frontier_parallel_layers() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3).cz(1, 2);
        let mut fr = Frontier::new(&c);
        assert_eq!(fr.front_layer(), &[0, 1]);
        let executed = fr.execute_front();
        assert_eq!(executed, vec![0, 1]);
        assert_eq!(fr.front_layer(), &[2]);
    }

    #[test]
    #[should_panic(expected = "out of dependency order")]
    fn frontier_rejects_out_of_order_execution() {
        let c = triangle();
        let mut fr = Frontier::new(&c);
        fr.execute(2);
    }

    #[test]
    fn split_front_layer_partitions() {
        let mut c = Circuit::new(3);
        c.h(0).cz(1, 2);
        let fr = Frontier::new(&c);
        let (one_q, two_q) = split_front_layer(&c, fr.front_layer());
        assert_eq!(one_q, vec![0]);
        assert_eq!(two_q, vec![1]);
    }

    #[test]
    fn frontier_front_stays_sorted() {
        let mut c = Circuit::new(6);
        c.cz(0, 1).cz(0, 2).cz(4, 5).cz(2, 3);
        let mut fr = Frontier::new(&c);
        assert_eq!(fr.front_layer(), &[0, 2]);
        fr.execute(0);
        assert_eq!(fr.front_layer(), &[1, 2]);
        fr.execute(2);
        fr.execute(1);
        assert_eq!(fr.front_layer(), &[3]);
    }

    #[test]
    fn execute_batch_matches_sequential_execution() {
        let mut c = Circuit::new(6);
        c.cz(0, 1).cz(2, 3).cz(4, 5).cz(1, 2).cz(3, 4).h(0).cz(0, 5);
        let mut seq = Frontier::new(&c);
        let mut batch = Frontier::new(&c);
        let mut promoted = Vec::new();
        while !seq.is_done() {
            let layer: Vec<GateId> = seq.front_layer().to_vec();
            for &id in &layer {
                seq.execute(id);
            }
            batch.execute_batch(&layer, &mut promoted);
            assert_eq!(seq.front_layer(), batch.front_layer());
            assert_eq!(seq.remaining(), batch.remaining());
            // Promotions are exactly the change in the front layer.
            for &p in &promoted {
                assert!(batch.front_layer().contains(&p));
            }
        }
        assert!(batch.is_done());
    }

    #[test]
    fn execute_batch_of_subset_promotes_in_order() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3).cz(1, 2);
        let mut fr = Frontier::new(&c);
        let mut promoted = Vec::new();
        fr.execute_batch(&[0, 1], &mut promoted);
        assert_eq!(promoted, vec![2]);
        assert_eq!(fr.front_layer(), &[2]);
    }

    #[test]
    #[should_panic(expected = "out of dependency order")]
    fn execute_batch_rejects_non_front_gates() {
        let c = triangle();
        let mut fr = Frontier::new(&c);
        let mut promoted = Vec::new();
        fr.execute_batch(&[2], &mut promoted);
    }

    #[test]
    fn remaining_counts_down() {
        let c = triangle();
        let mut fr = Frontier::new(&c);
        assert_eq!(fr.remaining(), 3);
        fr.execute(0);
        assert_eq!(fr.remaining(), 2);
        assert!(fr.is_executed(0));
        assert!(!fr.is_executed(1));
    }

    #[test]
    fn empty_circuit_frontier_is_done() {
        let c = Circuit::new(2);
        let fr = Frontier::new(&c);
        assert!(fr.is_done());
        assert!(fr.front_layer().is_empty());
    }
}

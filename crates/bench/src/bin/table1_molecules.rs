//! Table 1: quantum simulation of molecule Pauli strings (UCCSD ansatz) —
//! depth and 2Q gate count on the three baseline devices vs Q-Pilot.
//!
//! Usage: `table1_molecules [--molecules H2,LiH,H2O,BeH2]`
//!
//! LiH/H2O/BeH2 involve hundreds of strings routed through SABRE on every
//! baseline; expect a few minutes for the full set.

use qpilot_bench::{arg_value, compile_on_baselines, fpqa_config, route_workload, Table};
use qpilot_circuit::Circuit;
use qpilot_core::compile::Workload;
use qpilot_workloads::molecules::Molecule;

/// Paper-reported Table 1 values: (depth, 2Q) per device order
/// [FAA-rect, FAA-tri, IBM] and for Q-Pilot.
fn paper_reference(m: Molecule) -> ([(u64, u64); 3], (u64, u64)) {
    match m {
        Molecule::H2 => ([(76, 82), (61, 73), (77, 85)], (61, 94)),
        Molecule::LiH => ([(2772, 3577), (2052, 2616), (3403, 5082)], (849, 2130)),
        Molecule::H2O => (
            [(31087, 41306), (26189, 35353), (40080, 67247)],
            (7585, 20966),
        ),
        Molecule::BeH2 => (
            [(43919, 58720), (37314, 51699), (59259, 103594)],
            (10617, 29518),
        ),
    }
}

fn main() {
    let wanted: Vec<String> = arg_value("--molecules")
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_else(|| vec!["H2".into(), "LiH".into(), "H2O".into(), "BeH2".into()]);
    let theta = 0.17;

    let mut table = Table::new(&[
        "molecule",
        "qubits",
        "strings",
        "device",
        "depth",
        "2Q gates",
        "paper depth",
        "paper 2Q",
    ]);

    for m in Molecule::ALL {
        let short = m.name().split('_').next().unwrap_or(m.name());
        if !wanted.iter().any(|w| w.eq_ignore_ascii_case(short)) {
            continue;
        }
        let strings = m.pauli_strings();
        let n = m.num_qubits() as u32;
        let (paper_base, paper_ours) = paper_reference(m);

        // Q-Pilot.
        let cfg = fpqa_config(n);
        let program = route_workload(&Workload::pauli_strings(strings.clone(), theta), &cfg);
        let stats = program.stats();
        table.row(vec![
            m.name().into(),
            n.to_string(),
            strings.len().to_string(),
            "Q-Pilot (FPQA)".into(),
            stats.two_qubit_depth.to_string(),
            stats.two_qubit_gates.to_string(),
            paper_ours.0.to_string(),
            paper_ours.1.to_string(),
        ]);

        // Baselines on the reference ladder circuit.
        let mut reference = Circuit::new(n);
        for s in &strings {
            reference.extend_from(&s.evolution_circuit(theta).remapped(n, |q| q));
        }
        let labels = ["FAA (rect)", "FAA (tri)", "Superconducting"];
        for (i, b) in compile_on_baselines(&reference).iter().enumerate() {
            if let Some(r) = b {
                table.row(vec![
                    String::new(),
                    String::new(),
                    String::new(),
                    labels[i].into(),
                    r.two_qubit_depth.to_string(),
                    r.two_qubit_gates.to_string(),
                    paper_base[i].0.to_string(),
                    paper_base[i].1.to_string(),
                ]);
            }
        }
    }
    println!("== Table 1: molecule Pauli-string simulation ==");
    table.print();
    println!("(paper aggregate: 2.60x depth and 1.36x 2Q-gate reduction vs best baseline)");
}

//! Dense state vectors and gate application.

use std::fmt;

use qpilot_circuit::{Circuit, Gate, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Complex;

/// Maximum register width the simulator accepts (`2^24` amplitudes ≈ 268 MB
/// would already be excessive for correctness checks).
pub const MAX_QUBITS: u32 = 22;

/// A dense state vector over `n` qubits.
///
/// Basis-state indexing is little-endian: bit `q` of the index is the value
/// of [`Qubit`] `q`, so `|q1 q0⟩ = |10⟩` is index `0b10 = 2` with `q0 = 0`,
/// `q1 = 1`.
#[derive(Clone, PartialEq)]
pub struct StateVector {
    num_qubits: u32,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_QUBITS`.
    pub fn zero(num_qubits: u32) -> Self {
        Self::basis(num_qubits, 0)
    }

    /// The computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_QUBITS` or `index >= 2^num_qubits`.
    pub fn basis(num_qubits: u32, index: usize) -> Self {
        assert!(
            num_qubits <= MAX_QUBITS,
            "register of {num_qubits} qubits exceeds simulator limit {MAX_QUBITS}"
        );
        let dim = 1usize << num_qubits;
        assert!(index < dim, "basis index {index} out of range");
        let mut amps = vec![Complex::ZERO; dim];
        amps[index] = Complex::ONE;
        StateVector { num_qubits, amps }
    }

    /// A Haar-ish random state (i.i.d. Gaussian components, normalised),
    /// deterministic in `seed`.
    pub fn random(num_qubits: u32, seed: u64) -> Self {
        assert!(num_qubits <= MAX_QUBITS, "register too wide");
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 1usize << num_qubits;
        // Box-Muller from uniform samples; avoids a distributions dependency.
        let mut amps = Vec::with_capacity(dim);
        for _ in 0..dim {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = (-2.0 * u1.ln()).sqrt();
            amps.push(Complex::new(r * u2.cos(), r * u2.sin()));
        }
        let mut sv = StateVector { num_qubits, amps };
        sv.normalize();
        sv
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two matching a register of at
    /// most [`MAX_QUBITS`] qubits.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        let dim = amps.len();
        assert!(
            dim.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let num_qubits = dim.trailing_zeros();
        assert!(num_qubits <= MAX_QUBITS, "register too wide");
        StateVector { num_qubits, amps }
    }

    /// Register width.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// The raw amplitudes.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amps[index]
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].abs_sq()
    }

    /// The ℓ² norm (should be 1 for physical states).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.abs_sq()).sum::<f64>().sqrt()
    }

    /// Rescales to unit norm.
    ///
    /// # Panics
    ///
    /// Panics on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalise the zero vector");
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn inner(&self, other: &StateVector) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits, "width mismatch");
        let mut acc = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).abs_sq()
    }

    /// Tensor product `self ⊗ |0…0⟩` over `extra` additional (higher-index)
    /// qubits.
    pub fn padded_with_zeros(&self, extra: u32) -> StateVector {
        let mut out = StateVector::zero(self.num_qubits + extra);
        out.amps[..self.dim()].copy_from_slice(&self.amps);
        // zero() sets amplitude 1 at index 0; overwrite handled above since
        // self.amps[0] lands there.
        out
    }

    /// Probability that qubit `q` measures as `1`.
    pub fn prob_one(&self, q: Qubit) -> f64 {
        let bit = 1usize << q.index();
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.abs_sq())
            .sum()
    }

    /// Applies a single gate.
    ///
    /// # Panics
    ///
    /// Panics if an operand is outside the register.
    pub fn apply(&mut self, gate: &Gate) {
        match *gate {
            Gate::H(q) => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                self.apply_1q(
                    q,
                    [
                        Complex::real(s),
                        Complex::real(s),
                        Complex::real(s),
                        Complex::real(-s),
                    ],
                );
            }
            Gate::X(q) => self.apply_1q(
                q,
                [Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO],
            ),
            Gate::Y(q) => self.apply_1q(q, [Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO]),
            Gate::Z(q) => self.apply_phase(q, Complex::real(-1.0)),
            Gate::S(q) => self.apply_phase(q, Complex::I),
            Gate::Sdg(q) => self.apply_phase(q, -Complex::I),
            Gate::T(q) => self.apply_phase(q, Complex::cis(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg(q) => self.apply_phase(q, Complex::cis(-std::f64::consts::FRAC_PI_4)),
            Gate::Rx(q, t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                self.apply_1q(
                    q,
                    [
                        Complex::real(c),
                        Complex::new(0.0, -s),
                        Complex::new(0.0, -s),
                        Complex::real(c),
                    ],
                );
            }
            Gate::Ry(q, t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                self.apply_1q(
                    q,
                    [
                        Complex::real(c),
                        Complex::real(-s),
                        Complex::real(s),
                        Complex::real(c),
                    ],
                );
            }
            Gate::Rz(q, t) => {
                let bit = self.bit(q);
                let (p0, p1) = (Complex::cis(-t / 2.0), Complex::cis(t / 2.0));
                for (i, a) in self.amps.iter_mut().enumerate() {
                    *a *= if i & bit == 0 { p0 } else { p1 };
                }
            }
            Gate::Cx(c, t) => {
                let (cb, tb) = (self.bit(c), self.bit(t));
                for i in 0..self.amps.len() {
                    if i & cb != 0 && i & tb == 0 {
                        self.amps.swap(i, i | tb);
                    }
                }
            }
            Gate::Cz(a, b) => {
                let (ab, bb) = (self.bit(a), self.bit(b));
                for (i, amp) in self.amps.iter_mut().enumerate() {
                    if i & ab != 0 && i & bb != 0 {
                        *amp = -*amp;
                    }
                }
            }
            Gate::Zz(a, b, t) => {
                let (ab, bb) = (self.bit(a), self.bit(b));
                let (even, odd) = (Complex::cis(-t / 2.0), Complex::cis(t / 2.0));
                for (i, amp) in self.amps.iter_mut().enumerate() {
                    let parity = ((i & ab != 0) as u8) ^ ((i & bb != 0) as u8);
                    *amp *= if parity == 0 { even } else { odd };
                }
            }
            Gate::Swap(a, b) => {
                let (ab, bb) = (self.bit(a), self.bit(b));
                for i in 0..self.amps.len() {
                    if i & ab != 0 && i & bb == 0 {
                        self.amps.swap(i, (i & !ab) | bb);
                    }
                }
            }
        }
    }

    /// Applies every gate of `circuit` in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the register.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit of {} qubits exceeds register of {}",
            circuit.num_qubits(),
            self.num_qubits
        );
        for g in circuit.iter() {
            self.apply(g);
        }
    }

    fn bit(&self, q: Qubit) -> usize {
        assert!(
            (q.raw()) < self.num_qubits,
            "qubit {q} outside register of {} qubits",
            self.num_qubits
        );
        1usize << q.index()
    }

    /// Generic 2×2 unitary application; `m = [m00, m01, m10, m11]`.
    fn apply_1q(&mut self, q: Qubit, m: [Complex; 4]) {
        let bit = self.bit(q);
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0] * a0 + m[1] * a1;
                self.amps[j] = m[2] * a0 + m[3] * a1;
            }
        }
    }

    /// Diagonal 1Q gate `diag(1, phase)`.
    fn apply_phase(&mut self, q: Qubit, phase: Complex) {
        let bit = self.bit(q);
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & bit != 0 {
                *a *= phase;
            }
        }
    }
}

impl fmt::Debug for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateVector[{} qubits; ", self.num_qubits)?;
        let mut shown = 0;
        for (i, a) in self.amps.iter().enumerate() {
            if a.abs_sq() > 1e-18 {
                if shown > 0 {
                    write!(f, " + ")?;
                }
                write!(f, "({a})|{i:0width$b}⟩", width = self.num_qubits as usize)?;
                shown += 1;
                if shown >= 8 {
                    write!(f, " + …")?;
                    break;
                }
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn zero_state_is_basis_zero() {
        let sv = StateVector::zero(3);
        assert_eq!(sv.dim(), 8);
        assert_close(sv.probability(0), 1.0);
    }

    #[test]
    fn x_flips() {
        let mut sv = StateVector::zero(2);
        sv.apply(&Gate::X(Qubit::new(1)));
        assert_close(sv.probability(0b10), 1.0);
    }

    #[test]
    fn h_makes_uniform() {
        let mut sv = StateVector::zero(1);
        sv.apply(&Gate::H(Qubit::new(0)));
        assert_close(sv.probability(0), 0.5);
        assert_close(sv.probability(1), 0.5);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sv = StateVector::zero(2);
        sv.apply_circuit(&c);
        assert_close(sv.probability(0b00), 0.5);
        assert_close(sv.probability(0b11), 0.5);
        assert_close(sv.probability(0b01), 0.0);
    }

    #[test]
    fn cz_phases_only_11() {
        let mut sv = StateVector::from_amplitudes(vec![Complex::real(0.5); 4]);
        sv.apply(&Gate::Cz(Qubit::new(0), Qubit::new(1)));
        assert_eq!(sv.amplitude(0b11), Complex::real(-0.5));
        assert_eq!(sv.amplitude(0b01), Complex::real(0.5));
    }

    #[test]
    fn swap_exchanges() {
        let mut sv = StateVector::basis(2, 0b01);
        sv.apply(&Gate::Swap(Qubit::new(0), Qubit::new(1)));
        assert_close(sv.probability(0b10), 1.0);
    }

    #[test]
    fn rz_phases() {
        let mut sv = StateVector::basis(1, 1);
        sv.apply(&Gate::Rz(Qubit::new(0), PI));
        // e^{i pi/2} = i
        assert!((sv.amplitude(1) - Complex::I).abs() < 1e-12);
    }

    #[test]
    fn zz_is_symmetric_and_diagonal() {
        let mut a = StateVector::random(2, 7);
        let mut b = a.clone();
        a.apply(&Gate::Zz(Qubit::new(0), Qubit::new(1), 0.37));
        b.apply(&Gate::Zz(Qubit::new(1), Qubit::new(0), 0.37));
        assert!(a.fidelity(&b) > 1.0 - 1e-12);
    }

    #[test]
    fn zz_matches_cx_rz_cx() {
        let theta = 0.81;
        let mut direct = StateVector::random(2, 3);
        let mut decomposed = direct.clone();
        direct.apply(&Gate::Zz(Qubit::new(0), Qubit::new(1), theta));
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(1, theta).cx(0, 1);
        decomposed.apply_circuit(&c);
        let ip = direct.inner(&decomposed);
        assert!((ip.abs() - 1.0).abs() < 1e-12);
        // Exact equality of phase too: the decomposition has no global phase.
        assert!((ip.re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cx_direction_matters() {
        let mut sv = StateVector::basis(2, 0b01); // q0 = 1
        sv.apply(&Gate::Cx(Qubit::new(0), Qubit::new(1)));
        assert_close(sv.probability(0b11), 1.0);
        let mut sv = StateVector::basis(2, 0b01);
        sv.apply(&Gate::Cx(Qubit::new(1), Qubit::new(0)));
        assert_close(sv.probability(0b01), 1.0);
    }

    #[test]
    fn s_t_phases() {
        let mut sv = StateVector::basis(1, 1);
        sv.apply(&Gate::S(Qubit::new(0)));
        assert!((sv.amplitude(1) - Complex::I).abs() < 1e-12);
        sv.apply(&Gate::Sdg(Qubit::new(0)));
        sv.apply(&Gate::T(Qubit::new(0)));
        sv.apply(&Gate::T(Qubit::new(0)));
        assert!((sv.amplitude(1) - Complex::I).abs() < 1e-12);
    }

    #[test]
    fn random_state_is_normalised_and_deterministic() {
        let a = StateVector::random(4, 42);
        let b = StateVector::random(4, 42);
        let c = StateVector::random(4, 43);
        assert_close(a.norm(), 1.0);
        assert_eq!(a, b);
        assert!(a.fidelity(&c) < 0.999);
    }

    #[test]
    fn inverse_circuit_restores_state() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cz(1, 2).ry(2, 0.3);
        let original = StateVector::random(3, 5);
        let mut sv = original.clone();
        sv.apply_circuit(&c);
        sv.apply_circuit(&c.inverse());
        assert!(sv.fidelity(&original) > 1.0 - 1e-12);
    }

    #[test]
    fn padded_with_zeros_extends_register() {
        let mut sv = StateVector::zero(1);
        sv.apply(&Gate::H(Qubit::new(0)));
        let padded = sv.padded_with_zeros(2);
        assert_eq!(padded.num_qubits(), 3);
        assert_close(padded.probability(0b000), 0.5);
        assert_close(padded.probability(0b001), 0.5);
    }

    #[test]
    fn prob_one_marginal() {
        let mut c = Circuit::new(2);
        c.h(0);
        let mut sv = StateVector::zero(2);
        sv.apply_circuit(&c);
        assert_close(sv.prob_one(Qubit::new(0)), 0.5);
        assert_close(sv.prob_one(Qubit::new(1)), 0.0);
    }

    #[test]
    fn hadamard_sandwich_turns_cz_into_cx() {
        let mut direct = StateVector::random(2, 11);
        let mut sandwich = direct.clone();
        direct.apply(&Gate::Cx(Qubit::new(0), Qubit::new(1)));
        let mut c = Circuit::new(2);
        c.h(1).cz(0, 1).h(1);
        sandwich.apply_circuit(&c);
        let ip = direct.inner(&sandwich);
        assert!((ip.re - 1.0).abs() < 1e-12, "inner product {ip}");
    }

    #[test]
    #[should_panic(expected = "outside register")]
    fn gate_outside_register_panics() {
        let mut sv = StateVector::zero(1);
        sv.apply(&Gate::X(Qubit::new(1)));
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::basis(2, 0);
        let b = StateVector::basis(2, 3);
        assert_close(a.fidelity(&b), 0.0);
    }

    #[test]
    fn y_gate_action() {
        let mut sv = StateVector::zero(1);
        sv.apply(&Gate::Y(Qubit::new(0)));
        // Y|0> = i|1>
        assert!((sv.amplitude(1) - Complex::I).abs() < 1e-12);
    }
}

//! Fault injection for chaos testing the serving stack.
//!
//! The sites are compiled in unconditionally — production binaries carry
//! the hooks, disarmed — and armed per process via a spec string
//! (`qpilotd --faults <SPEC>` or the `QPILOT_FAULTS` environment
//! variable). A disarmed site is one relaxed atomic load, so the hooks
//! cost nothing on the default path and the chaos suite exercises the
//! *same* binary CI ships.
//!
//! Spec grammar — comma-separated arms, each `name[=value][:count]`:
//!
//! | arm | effect at its site |
//! |---|---|
//! | `worker-stall=MS[:N]` | worker sleeps `MS` ms before looking at a job |
//! | `store-write-delay=MS[:N]` | store sleeps `MS` ms before a blob write |
//! | `store-write-fail[:N]` | blob write fails as if fsync returned an error |
//! | `poison-compile[:N]` | the compile panics (caught by the worker's unwind guard) |
//!
//! `:N` limits an arm to its first `N` firings (omitted = unlimited) —
//! e.g. `worker-stall=400:1` wedges exactly one compile so a hedge can
//! win, then the site goes quiet.
//!
//! [`FaultSpec`] is the parsed, inert configuration (plain data, lives
//! in `ServiceConfig`); [`Faults`] is the armed runtime with atomic
//! countdown state, shared by the worker pool and the store.

use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

/// One parsed arm: the millisecond payload (stall/delay sites) and an
/// optional firing budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultArm {
    /// Milliseconds for stall/delay arms; `0` for valueless arms.
    pub value_ms: u64,
    /// Fire at most this many times (`None` = unlimited).
    pub count: Option<u64>,
}

/// A parsed `--faults` / `QPILOT_FAULTS` spec. Inert plain data — see
/// [`Faults`] for the armed runtime form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// `worker-stall=MS[:N]`: sleep before the worker touches a job.
    pub worker_stall: Option<FaultArm>,
    /// `store-write-delay=MS[:N]`: sleep before a blob write.
    pub store_write_delay: Option<FaultArm>,
    /// `store-write-fail[:N]`: blob write reports failure.
    pub store_write_fail: Option<FaultArm>,
    /// `poison-compile[:N]`: the compile panics.
    pub poison_compile: Option<FaultArm>,
}

impl FaultSpec {
    /// Parses the comma-separated spec grammar (see the [module
    /// docs](self)). The empty string is the empty spec.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed arm.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut out = FaultSpec::default();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            // name[=value][:count] — the count suffix binds last.
            let (head, count) = match raw.rsplit_once(':') {
                Some((head, count)) => {
                    let count: u64 = count
                        .parse()
                        .map_err(|_| format!("fault arm `{raw}`: bad count `{count}`"))?;
                    (head, Some(count))
                }
                None => (raw, None),
            };
            let (name, value_ms) = match head.split_once('=') {
                Some((name, value)) => {
                    let value: u64 = value
                        .parse()
                        .map_err(|_| format!("fault arm `{raw}`: bad value `{value}`"))?;
                    (name, value)
                }
                None => (head, 0),
            };
            let arm = Some(FaultArm { value_ms, count });
            match name {
                "worker-stall" => out.worker_stall = arm,
                "store-write-delay" => out.store_write_delay = arm,
                "store-write-fail" => out.store_write_fail = arm,
                "poison-compile" => out.poison_compile = arm,
                other => return Err(format!("unknown fault site `{other}`")),
            }
            if matches!(name, "worker-stall" | "store-write-delay") && value_ms == 0 {
                return Err(format!("fault arm `{raw}`: `{name}` needs `=MS`"));
            }
        }
        Ok(out)
    }

    /// Parses `QPILOT_FAULTS` when set; the empty spec otherwise.
    ///
    /// # Errors
    ///
    /// See [`FaultSpec::parse`].
    pub fn from_env() -> Result<FaultSpec, String> {
        match std::env::var("QPILOT_FAULTS") {
            Ok(spec) => FaultSpec::parse(&spec),
            Err(_) => Ok(FaultSpec::default()),
        }
    }

    /// `true` when no arm is configured.
    pub fn is_empty(&self) -> bool {
        *self == FaultSpec::default()
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut arm = |f: &mut fmt::Formatter<'_>,
                       name: &str,
                       valued: bool,
                       a: &Option<FaultArm>|
         -> fmt::Result {
            let Some(a) = a else { return Ok(()) };
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{name}")?;
            if valued {
                write!(f, "={}", a.value_ms)?;
            }
            if let Some(n) = a.count {
                write!(f, ":{n}")?;
            }
            Ok(())
        };
        arm(f, "worker-stall", true, &self.worker_stall)?;
        arm(f, "store-write-delay", true, &self.store_write_delay)?;
        arm(f, "store-write-fail", false, &self.store_write_fail)?;
        arm(f, "poison-compile", false, &self.poison_compile)
    }
}

/// One armed site: a millisecond payload and an atomic firing budget
/// (`0` disarmed, `-1` unlimited, `>0` remaining firings).
#[derive(Debug)]
struct FaultSite {
    value_ms: u64,
    remaining: AtomicI64,
}

impl FaultSite {
    fn from_arm(arm: Option<FaultArm>) -> FaultSite {
        match arm {
            None => FaultSite {
                value_ms: 0,
                remaining: AtomicI64::new(0),
            },
            Some(a) => FaultSite {
                value_ms: a.value_ms,
                remaining: AtomicI64::new(match a.count {
                    None => -1,
                    Some(n) => i64::try_from(n).unwrap_or(i64::MAX),
                }),
            },
        }
    }

    /// Consumes one firing; `Some(value_ms)` when the site fires.
    fn fire(&self) -> Option<u64> {
        loop {
            let cur = self.remaining.load(Ordering::Relaxed);
            if cur == 0 {
                return None;
            }
            if cur < 0 {
                return Some(self.value_ms);
            }
            if self
                .remaining
                .compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(self.value_ms);
            }
        }
    }
}

/// The armed runtime form of a [`FaultSpec`], shared (via `Arc`) by the
/// worker pool and the schedule store. Each method is one injection
/// site; disarmed sites are a single atomic load.
#[derive(Debug)]
pub struct Faults {
    worker_stall: FaultSite,
    store_write_delay: FaultSite,
    store_write_fail: FaultSite,
    poison_compile: FaultSite,
}

impl Default for Faults {
    fn default() -> Self {
        Faults::from_spec(&FaultSpec::default())
    }
}

impl Faults {
    /// Arms a spec.
    pub fn from_spec(spec: &FaultSpec) -> Faults {
        Faults {
            worker_stall: FaultSite::from_arm(spec.worker_stall),
            store_write_delay: FaultSite::from_arm(spec.store_write_delay),
            store_write_fail: FaultSite::from_arm(spec.store_write_fail),
            poison_compile: FaultSite::from_arm(spec.poison_compile),
        }
    }

    /// Site: worker picked up a job (before cache double-check).
    pub fn worker_stall(&self) {
        if let Some(ms) = self.worker_stall.fire() {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    /// Site: store about to write a blob (sleep component).
    pub fn store_write_delay(&self) {
        if let Some(ms) = self.store_write_delay.fire() {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    /// Site: store about to write a blob; `true` = the write must be
    /// treated as failed (the injected stand-in for an fsync error).
    pub fn store_write_fail(&self) -> bool {
        self.store_write_fail.fire().is_some()
    }

    /// Site: compile about to run; `true` = panic instead (the worker's
    /// unwind guard must contain it).
    pub fn poison_compile(&self) -> bool {
        self.poison_compile.fire().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_round_trips() {
        let spec = FaultSpec::parse("").unwrap();
        assert!(spec.is_empty());
        assert_eq!(spec.to_string(), "");
    }

    #[test]
    fn full_grammar_parses_and_renders() {
        let spec = FaultSpec::parse(
            "worker-stall=400:1,store-write-delay=50,store-write-fail:2,poison-compile",
        )
        .unwrap();
        assert_eq!(
            spec.worker_stall,
            Some(FaultArm {
                value_ms: 400,
                count: Some(1)
            })
        );
        assert_eq!(
            spec.store_write_delay,
            Some(FaultArm {
                value_ms: 50,
                count: None
            })
        );
        assert_eq!(
            spec.store_write_fail,
            Some(FaultArm {
                value_ms: 0,
                count: Some(2)
            })
        );
        assert_eq!(
            spec.poison_compile,
            Some(FaultArm {
                value_ms: 0,
                count: None
            })
        );
        // Display re-emits the same spec (arm order is canonical).
        assert_eq!(
            spec.to_string(),
            "worker-stall=400:1,store-write-delay=50,store-write-fail:2,poison-compile"
        );
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("worker-stall", "needs `=MS`"),
            ("worker-stall=abc", "bad value"),
            ("poison-compile:x", "bad count"),
            ("quantum-bitflip", "unknown fault site"),
        ] {
            let err = FaultSpec::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn counted_site_fires_exactly_n_times() {
        let faults = Faults::from_spec(&FaultSpec::parse("store-write-fail:2").unwrap());
        assert!(faults.store_write_fail());
        assert!(faults.store_write_fail());
        assert!(!faults.store_write_fail());
        assert!(!faults.store_write_fail());
    }

    #[test]
    fn unlimited_site_keeps_firing_and_disarmed_site_never_does() {
        let faults = Faults::from_spec(&FaultSpec::parse("poison-compile").unwrap());
        for _ in 0..10 {
            assert!(faults.poison_compile());
        }
        assert!(!faults.store_write_fail());
        let disarmed = Faults::default();
        assert!(!disarmed.poison_compile());
    }
}

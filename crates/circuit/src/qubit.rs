//! Typed qubit indices.

use std::fmt;

/// A logical qubit index within a [`Circuit`](crate::Circuit).
///
/// `Qubit` is a thin newtype over `u32` providing static distinction from
/// other integer quantities (rows, columns, gate ids) that circulate through
/// the compiler.
///
/// # Example
///
/// ```
/// use qpilot_circuit::Qubit;
///
/// let q = Qubit::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(format!("{q}"), "q3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Qubit(u32);

impl Qubit {
    /// Creates a qubit with the given index.
    pub const fn new(index: u32) -> Self {
        Qubit(index)
    }

    /// Returns the raw index as a `usize`, convenient for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as a `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(index: u32) -> Self {
        Qubit(index)
    }
}

impl From<usize> for Qubit {
    fn from(index: usize) -> Self {
        Qubit(u32::try_from(index).expect("qubit index exceeds u32::MAX"))
    }
}

impl From<Qubit> for usize {
    fn from(q: Qubit) -> usize {
        q.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let q = Qubit::from(7u32);
        assert_eq!(q.raw(), 7);
        assert_eq!(q.index(), 7);
    }

    #[test]
    fn roundtrip_usize() {
        let q = Qubit::from(11usize);
        assert_eq!(usize::from(q), 11);
    }

    #[test]
    fn display_is_q_prefixed() {
        assert_eq!(Qubit::new(0).to_string(), "q0");
        assert_eq!(Qubit::new(42).to_string(), "q42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Qubit::new(1) < Qubit::new(2));
    }
}

//! The paper's outlook, realised: trade compile time for solution quality
//! with router-in-the-loop qubit-mapping search, and watch the compiled
//! program with the ASCII schedule renderer.
//!
//! Run with: `cargo run --release --example mapping_search`

use qpilot::circuit::Circuit;
use qpilot::core::compile::{compile, Workload};
use qpilot::core::mapper::{search_circuit_mapping, MappingSearchOptions};
use qpilot::core::render::render_timeline;
use qpilot::core::FpqaConfig;

fn main() {
    // A random sparse circuit: reading-order placement is rarely optimal,
    // so the searcher has real room to shorten flights and pack stages.
    let n = 16u32;
    let circuit = {
        use qpilot::workloads::random::{random_circuit, RandomCircuitConfig};
        let mut c = Circuit::new(n);
        c.extend_from(&random_circuit(&RandomCircuitConfig {
            num_qubits: n,
            two_qubit_gates: 24,
            one_qubit_gates: 0,
            seed: 3,
        }));
        c
    };
    let config = FpqaConfig::for_qubits(n, 4);

    let identity = compile(&Workload::circuit(circuit.clone()), &config).expect("routing");
    println!(
        "reading-order mapping: depth {}, total movement {:.0} um",
        identity.stats().two_qubit_depth,
        qpilot::core::evaluator::evaluate(identity.schedule(), &config).total_move_um
    );

    for iterations in [16usize, 64, 256] {
        let result = search_circuit_mapping(
            &circuit,
            &config,
            MappingSearchOptions {
                iterations,
                ..Default::default()
            },
        )
        .expect("search");
        let report = qpilot::core::evaluator::evaluate(result.program.schedule(), &config);
        println!(
            "after {iterations:>3} search iterations: depth {} (identity {}), movement {:.0} um (identity {:.0})",
            result.program.stats().two_qubit_depth,
            result.identity_depth,
            report.total_move_um,
            result.identity_move_um,
        );
        if iterations == 256 {
            println!("\nbest mapping (logical -> slot): {:?}", result.mapping);
            println!("\nfirst pulses of the optimised schedule:");
            print!("{}", render_timeline(result.program.schedule(), &config, 3));
        }
    }
}

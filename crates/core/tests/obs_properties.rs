//! Property tests for the observability histogram math: bucket mapping,
//! quantile correctness against a sorted-vector oracle, merge algebra
//! and saturation at the bucket extremes.

use proptest::prelude::*;
use qpilot_core::obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record_ns(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The reported quantile lands in the same bucket as the exact
    /// sorted-vector quantile (midpoint reporting bounds the relative
    /// error by the 6.25% sub-bucket width).
    #[test]
    fn percentile_matches_sorted_oracle(
        values in prop::collection::vec(0u64..(1u64 << 40), 1..200),
        q in 0.0f64..1.0,
    ) {
        let snap = snapshot_of(&values);
        let mut values = values;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let oracle = values[rank - 1];
        let got = snap.percentile(q);
        prop_assert_eq!(
            bucket_index(got), bucket_index(oracle),
            "q = {}, oracle = {}, got = {}", q, oracle, got
        );
    }

    /// Bucket mapping round-trips through its bounds and is monotone.
    #[test]
    fn bucket_bounds_contain_their_values(v in 0u64..u64::MAX, w in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v);
        prop_assert!(v < hi || idx == BUCKETS - 1);
        if v <= w {
            prop_assert!(bucket_index(v) <= bucket_index(w));
        }
    }

    /// Sub-bucket width bounds the relative error below the saturation
    /// point.
    #[test]
    fn relative_bucket_width_is_bounded(v in 16u64..(1u64 << 40)) {
        let idx = bucket_index(v);
        if idx < BUCKETS - 1 {
            // The last bucket is open-ended; every other one is within
            // one sub-bucket of relative width.
            let (lo, hi) = bucket_bounds(idx);
            prop_assert!((hi - lo) as f64 / lo as f64 <= 1.0 / 16.0 + 1e-12);
        }
    }

    /// Values at or beyond `2^40` ns saturate into the open-ended top
    /// bucket, and the quantile of a saturated histogram reports the
    /// exact observed max rather than a bucket midpoint.
    #[test]
    fn saturated_values_land_in_the_top_bucket(v in (1u64 << 40)..u64::MAX) {
        prop_assert_eq!(bucket_index(v), BUCKETS - 1);
        let snap = snapshot_of(&[v]);
        prop_assert_eq!(snap.percentile(0.5), v);
    }

    /// Merging is associative and commutative, with the empty snapshot
    /// as identity, and merging shard parts equals recording the
    /// concatenation directly.
    #[test]
    fn merge_is_associative_commutative_and_lossless(
        a in prop::collection::vec(0u64..(1u64 << 44), 0..60),
        b in prop::collection::vec(0u64..(1u64 << 44), 0..60),
        c in prop::collection::vec(0u64..(1u64 << 44), 0..60),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut ab_c = sa.clone();
        ab_c.merge(&sb);
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let mut ba = sb.clone();
        ba.merge(&sa);
        let mut ab = sa.clone();
        ab.merge(&sb);
        prop_assert_eq!(&ab, &ba);

        let mut with_identity = HistogramSnapshot::empty();
        with_identity.merge(&sa);
        prop_assert_eq!(&with_identity, &sa);

        let mut whole: Vec<u64> = a.clone();
        whole.extend(&b);
        whole.extend(&c);
        prop_assert_eq!(&ab_c, &snapshot_of(&whole));
    }
}

//! Trotterised quantum simulation: route the UCCSD Pauli strings of the H2
//! molecule with the quantum-simulation router (Alg. 2), inspect the fan-out
//! / longest-path structure, and verify the evolution in simulation.
//!
//! Run with: `cargo run --example quantum_simulation`

use qpilot::circuit::Circuit;
use qpilot::core::compile::{CompileOptions, Compiler, Workload};
use qpilot::core::FpqaConfig;
use qpilot::sim::equiv::verify_compiled;
use qpilot::workloads::molecules::Molecule;

fn main() {
    let molecule = Molecule::H2;
    let strings = molecule.pauli_strings();
    let n = molecule.num_qubits() as u32;
    println!(
        "{molecule}: {} qubits, {} UCCSD Pauli strings",
        n,
        strings.len()
    );
    for s in strings.iter().take(4) {
        println!("  {s}  (weight {})", s.weight());
    }
    println!("  ...");

    let theta = 0.17; // one Trotter step angle
    let config = FpqaConfig::square_for(n);
    // The workload family selects the quantum-simulation router (Alg. 2);
    // the validate toggle replays the geometry before the program is
    // handed back.
    let program = Compiler::with_options(CompileOptions::new().validate(true))
        .compile(&Workload::pauli_strings(strings.clone(), theta), &config)
        .expect("routing")
        .into_program();

    let stats = program.stats();
    println!(
        "\ncompiled: depth {} | 2Q gates {} | 1Q gates {} | {} flying ancillas total",
        stats.two_qubit_depth,
        stats.two_qubit_gates,
        stats.one_qubit_gates,
        program.schedule().num_ancillas
    );

    // Reference: the textbook CNOT-ladder circuit per string.
    let mut reference = Circuit::new(n);
    for s in &strings {
        reference.extend_from(&s.evolution_circuit(theta).remapped(n, |q| q));
    }
    println!(
        "reference ladder circuit: depth {} | 2Q gates {}",
        reference.two_qubit_depth(),
        reference.two_qubit_count()
    );

    let res = verify_compiled(&program.schedule().to_circuit(), &reference);
    println!(
        "\nsimulator check: exp(-i θ/2 P) product reproduced = {} (ancilla leakage {:.2e})",
        res.equivalent, res.max_ancilla_leakage
    );
}

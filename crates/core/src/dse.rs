//! Router-in-the-loop design-space exploration (§3.1, Fig. 14).
//!
//! The paper organises qubits into rectangular arrays of varying widths
//! (8–128 columns) and compiles the same workload onto each candidate,
//! picking the width with the smallest compiled depth. [`sweep_widths`]
//! runs that loop for any routing closure.

use crate::evaluator::{evaluate, PerformanceReport};
use crate::{CompileError, CompiledProgram, FpqaConfig};

/// Outcome of compiling one candidate array width.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthResult {
    /// SLM/AOD array width (columns).
    pub width: usize,
    /// Full cost report at this width.
    pub report: PerformanceReport,
}

/// The paper's Fig. 14 sweep widths.
pub const PAPER_WIDTHS: [usize; 5] = [8, 16, 32, 64, 128];

/// Compiles the workload at each width and returns per-width reports.
///
/// `route` receives a configuration for `num_qubits` data qubits at the
/// candidate width; widths whose routing fails are skipped.
pub fn sweep_widths<F>(num_qubits: u32, widths: &[usize], mut route: F) -> Vec<WidthResult>
where
    F: FnMut(&FpqaConfig) -> Result<CompiledProgram, CompileError>,
{
    let mut results = Vec::new();
    for &width in widths {
        let config = FpqaConfig::for_qubits(num_qubits, width);
        if let Ok(program) = route(&config) {
            let report = evaluate(program.schedule(), &config);
            results.push(WidthResult { width, report });
        }
    }
    results
}

/// Returns the width with the smallest compiled two-qubit depth (ties break
/// toward the smaller width), or `None` if every width failed.
pub fn best_width(results: &[WidthResult]) -> Option<&WidthResult> {
    results
        .iter()
        .min_by_key(|r| (r.report.two_qubit_depth, r.width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::GenericRouter;
    use qpilot_circuit::Circuit;

    #[test]
    fn sweep_covers_all_widths() {
        let mut c = Circuit::new(12);
        c.cz(0, 5).cz(3, 9).cz(1, 2).cz(7, 11);
        let results = sweep_widths(12, &[2, 4, 6], |cfg| {
            GenericRouter::new().route(&c, cfg).map_err(Into::into)
        });
        assert_eq!(results.len(), 3);
        let widths: Vec<usize> = results.iter().map(|r| r.width).collect();
        assert_eq!(widths, vec![2, 4, 6]);
    }

    #[test]
    fn best_width_minimises_depth() {
        let mut c = Circuit::new(16);
        for q in 0..8 {
            c.cz(q, q + 8);
        }
        let results = sweep_widths(16, &[2, 4, 8], |cfg| {
            GenericRouter::new().route(&c, cfg).map_err(Into::into)
        });
        let best = best_width(&results).expect("at least one width succeeds");
        for r in &results {
            assert!(best.report.two_qubit_depth <= r.report.two_qubit_depth);
        }
    }

    #[test]
    fn empty_results_have_no_best() {
        assert!(best_width(&[]).is_none());
    }
}

//! Minimal OpenQASM 2.0 export and import, for debugging and interchange.
//!
//! [`Circuit::to_qasm`] renders the gate set onto `qelib1` names;
//! [`Circuit::from_qasm`] parses the same dialect back. The pair is
//! asymmetric in exactly one place, by necessity: `rzz` is not part of
//! `qelib1`, so the exporter emits its standard `cx`/`rz`/`cx` expansion
//! and the importer returns that expansion (it does not re-fuse it). The
//! importer *does* accept a literal `rzz(θ)` statement, so circuits from
//! tools that emit the gate directly still load. Everything else round
//! trips exactly: `Circuit::from_qasm(&c.to_qasm())` equals `c` gate for
//! gate whenever `c` contains no `Zz`, and re-emitting is always
//! byte-identical (`to_qasm ∘ from_qasm ∘ to_qasm = to_qasm`) because
//! angles are printed in Rust's shortest round-trip decimal form.

use std::fmt;
use std::fmt::Write as _;

use crate::{Circuit, CircuitError, Gate, Qubit};

impl Circuit {
    /// Renders the circuit as OpenQASM 2.0 source.
    ///
    /// `rzz` is emitted via its standard `cx`/`rz` expansion since it is not
    /// part of `qelib1`.
    ///
    /// # Example
    ///
    /// ```
    /// use qpilot_circuit::Circuit;
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1);
    /// let qasm = c.to_qasm();
    /// assert!(qasm.contains("h q[0];"));
    /// assert!(qasm.contains("cx q[0], q[1];"));
    /// ```
    pub fn to_qasm(&self) -> String {
        let mut out = String::new();
        out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
        let _ = writeln!(out, "qreg q[{}];", self.num_qubits());
        for g in self.iter() {
            match *g {
                Gate::Rx(q, t) | Gate::Ry(q, t) | Gate::Rz(q, t) => {
                    let _ = writeln!(out, "{}({}) q[{}];", g.mnemonic(), t, q.index());
                }
                Gate::Zz(a, b, t) => {
                    let _ = writeln!(out, "cx q[{}], q[{}];", a.index(), b.index());
                    let _ = writeln!(out, "rz({}) q[{}];", t, b.index());
                    let _ = writeln!(out, "cx q[{}], q[{}];", a.index(), b.index());
                }
                Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => {
                    let _ = writeln!(out, "{} q[{}], q[{}];", g.mnemonic(), a.index(), b.index());
                }
                _ => {
                    let q = g
                        .operands()
                        .into_iter()
                        .next()
                        .expect("1Q gate has an operand");
                    let _ = writeln!(out, "{} q[{}];", g.mnemonic(), q.index());
                }
            }
        }
        out
    }

    /// Parses OpenQASM 2.0 source produced by [`Circuit::to_qasm`] (and the
    /// common subset other tools emit for this gate set).
    ///
    /// Supported statements: the `OPENQASM` header, `include`, one `qreg`,
    /// `creg` (ignored), `barrier` (ignored), and applications of `h x y z
    /// s sdg t tdg rx ry rz cx cz swap rzz` to `reg[i]` operands. Angle
    /// expressions may be decimal literals or the `pi` forms `pi`, `-pi`,
    /// `a*pi`, `pi/b`, `a*pi/b`.
    ///
    /// # Errors
    ///
    /// [`QasmError`] on malformed syntax, unsupported statements
    /// (`measure`, `if`, custom `gate` definitions, a second `qreg`) or
    /// gates referencing qubits outside the declared register.
    ///
    /// # Example
    ///
    /// ```
    /// use qpilot_circuit::Circuit;
    /// let mut c = Circuit::new(3);
    /// c.h(0).cx(0, 2).rz(1, -0.75);
    /// let back = Circuit::from_qasm(&c.to_qasm()).unwrap();
    /// assert_eq!(back, c);
    /// ```
    pub fn from_qasm(source: &str) -> Result<Circuit, QasmError> {
        Parser::new(source).parse()
    }
}

/// Error raised by [`Circuit::from_qasm`].
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// A statement could not be parsed.
    Syntax {
        /// 1-based source line of the statement's start.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A recognised but unsupported construct.
    Unsupported {
        /// 1-based source line of the statement's start.
        line: usize,
        /// The offending construct.
        construct: String,
    },
    /// A gate failed circuit validation (bad operands).
    Circuit(CircuitError),
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::Syntax { line, message } => {
                write!(f, "qasm syntax error on line {line}: {message}")
            }
            QasmError::Unsupported { line, construct } => {
                write!(f, "unsupported qasm construct on line {line}: {construct}")
            }
            QasmError::Circuit(e) => write!(f, "invalid gate in qasm: {e}"),
        }
    }
}

impl std::error::Error for QasmError {}

impl From<CircuitError> for QasmError {
    fn from(e: CircuitError) -> Self {
        QasmError::Circuit(e)
    }
}

struct Parser<'a> {
    source: &'a str,
    reg_name: Option<String>,
    reg_size: u32,
    circuit: Option<Circuit>,
}

impl<'a> Parser<'a> {
    fn new(source: &'a str) -> Self {
        Parser {
            source,
            reg_name: None,
            reg_size: 0,
            circuit: None,
        }
    }

    fn parse(mut self) -> Result<Circuit, QasmError> {
        for (line, stmt) in statements(self.source) {
            self.statement(line, &stmt)?;
        }
        self.circuit.ok_or(QasmError::Syntax {
            line: 1,
            message: "missing qreg declaration".into(),
        })
    }

    fn statement(&mut self, line: usize, stmt: &str) -> Result<(), QasmError> {
        let syntax = |message: String| QasmError::Syntax { line, message };
        let head = stmt.split_whitespace().next().unwrap_or("");
        // Split off the head also for `name(param)` forms.
        let keyword: String = head
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        match keyword.as_str() {
            "OPENQASM" | "include" | "barrier" => Ok(()),
            "creg" => Ok(()), // classical registers are irrelevant here
            "qreg" => self.qreg(line, stmt),
            "measure" | "if" | "gate" | "opaque" | "reset" => Err(QasmError::Unsupported {
                line,
                construct: keyword,
            }),
            "" => Err(syntax("empty statement".into())),
            _ => self.gate(line, stmt, &keyword),
        }
    }

    fn qreg(&mut self, line: usize, stmt: &str) -> Result<(), QasmError> {
        if self.circuit.is_some() {
            return Err(QasmError::Unsupported {
                line,
                construct: "second qreg".into(),
            });
        }
        // qreg name[N]
        let rest = stmt["qreg".len()..].trim();
        let (name, size) = parse_indexed(rest).ok_or(QasmError::Syntax {
            line,
            message: format!("malformed qreg: `{stmt}`"),
        })?;
        self.reg_name = Some(name.to_string());
        self.reg_size = size;
        self.circuit = Some(Circuit::new(size));
        Ok(())
    }

    fn gate(&mut self, line: usize, stmt: &str, name: &str) -> Result<(), QasmError> {
        let syntax = |message: String| QasmError::Syntax { line, message };
        let circuit = self.circuit.as_mut().ok_or(QasmError::Syntax {
            line,
            message: "gate before qreg declaration".into(),
        })?;
        let after_name = stmt[name.len()..].trim_start();
        // Optional parenthesised parameter.
        let (param, operand_text) = if let Some(rest) = after_name.strip_prefix('(') {
            let close = rest
                .find(')')
                .ok_or_else(|| syntax(format!("missing `)` in `{stmt}`")))?;
            let angle = parse_angle(rest[..close].trim())
                .ok_or_else(|| syntax(format!("bad angle `{}`", rest[..close].trim())))?;
            (Some(angle), rest[close + 1..].trim())
        } else {
            (None, after_name)
        };
        let mut qubits = Vec::new();
        for op in operand_text.split(',') {
            let op = op.trim();
            let (reg, idx) = parse_indexed(op)
                .ok_or_else(|| syntax(format!("malformed operand `{op}` in `{stmt}`")))?;
            if Some(reg) != self.reg_name.as_deref() {
                return Err(syntax(format!("unknown register `{reg}`")));
            }
            if idx >= self.reg_size {
                return Err(QasmError::Circuit(CircuitError::QubitOutOfRange {
                    qubit: Qubit::new(idx),
                    num_qubits: self.reg_size,
                }));
            }
            qubits.push(Qubit::new(idx));
        }
        let expect = |n: usize, with_param: bool| -> Result<(), QasmError> {
            if qubits.len() != n {
                return Err(QasmError::Syntax {
                    line,
                    message: format!("{name} expects {n} operand(s), got {}", qubits.len()),
                });
            }
            if param.is_some() != with_param {
                return Err(QasmError::Syntax {
                    line,
                    message: format!(
                        "{name} {} a parameter",
                        if with_param { "requires" } else { "takes no" }
                    ),
                });
            }
            Ok(())
        };
        let gate = match name {
            "h" | "x" | "y" | "z" | "s" | "sdg" | "t" | "tdg" => {
                expect(1, false)?;
                let q = qubits[0];
                match name {
                    "h" => Gate::H(q),
                    "x" => Gate::X(q),
                    "y" => Gate::Y(q),
                    "z" => Gate::Z(q),
                    "s" => Gate::S(q),
                    "sdg" => Gate::Sdg(q),
                    "t" => Gate::T(q),
                    _ => Gate::Tdg(q),
                }
            }
            "rx" | "ry" | "rz" => {
                expect(1, true)?;
                let (q, t) = (qubits[0], param.expect("checked"));
                match name {
                    "rx" => Gate::Rx(q, t),
                    "ry" => Gate::Ry(q, t),
                    _ => Gate::Rz(q, t),
                }
            }
            "cx" | "cz" | "swap" => {
                expect(2, false)?;
                let (a, b) = (qubits[0], qubits[1]);
                match name {
                    "cx" => Gate::Cx(a, b),
                    "cz" => Gate::Cz(a, b),
                    _ => Gate::Swap(a, b),
                }
            }
            "rzz" => {
                expect(2, true)?;
                Gate::Zz(qubits[0], qubits[1], param.expect("checked"))
            }
            other => {
                return Err(QasmError::Unsupported {
                    line,
                    construct: other.to_string(),
                })
            }
        };
        circuit.push(gate)?;
        Ok(())
    }
}

/// Splits source into `;`-terminated statements with their 1-based start
/// lines, stripping `//` comments.
fn statements(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut start_line = 1;
    for (i, raw_line) in source.lines().enumerate() {
        let line = match raw_line.find("//") {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        for piece in line.split_inclusive(';') {
            if current.trim().is_empty() {
                start_line = i + 1;
            }
            if let Some(body) = piece.strip_suffix(';') {
                current.push_str(body);
                let stmt = current.trim().to_string();
                if !stmt.is_empty() {
                    out.push((start_line, stmt));
                }
                current.clear();
            } else {
                current.push_str(piece);
                current.push(' ');
            }
        }
    }
    let trailing = current.trim();
    if !trailing.is_empty() {
        out.push((start_line, trailing.to_string()));
    }
    out
}

/// Parses `name[N]`, returning the name and index.
fn parse_indexed(text: &str) -> Option<(&str, u32)> {
    let open = text.find('[')?;
    let close = text.find(']')?;
    if close != text.len() - 1 || close <= open {
        return None;
    }
    let name = text[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let idx: u32 = text[open + 1..close].trim().parse().ok()?;
    Some((name, idx))
}

/// Evaluates the angle expressions this dialect uses: decimal literals and
/// the `pi` family (`pi`, `-pi`, `a*pi`, `pi/b`, `a*pi/b`).
fn parse_angle(text: &str) -> Option<f64> {
    let text = text.trim();
    if let Ok(v) = text.parse::<f64>() {
        // `f64::from_str` accepts "inf"/"NaN" and overflows "1e999" to
        // infinity; none of those are angles, and letting them through
        // would panic downstream serialisers.
        return v.is_finite().then_some(v);
    }
    let (sign, body) = match text.strip_prefix('-') {
        Some(rest) => (-1.0, rest.trim()),
        None => (1.0, text),
    };
    let (mul, rest) = match body.split_once('*') {
        Some((a, rest)) => (a.trim().parse::<f64>().ok()?, rest.trim()),
        None => (1.0, body),
    };
    let (pi_part, div) = match rest.split_once('/') {
        Some((p, b)) => (p.trim(), b.trim().parse::<f64>().ok()?),
        None => (rest, 1.0),
    };
    if pi_part != "pi" || div == 0.0 {
        return None;
    }
    // The multiplier/divisor literals can themselves be non-finite or
    // overflow the product (`1e999*pi`, `pi/1e-308`); guard the final
    // value, not just the plain-literal branch above.
    let v = sign * mul * std::f64::consts::PI / div;
    v.is_finite().then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_register() {
        let c = Circuit::new(3);
        let q = c.to_qasm();
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
    }

    #[test]
    fn rotation_gates_carry_angles() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.5);
        assert!(c.to_qasm().contains("rz(0.5) q[0];"));
    }

    #[test]
    fn rzz_expands() {
        let mut c = Circuit::new(2);
        c.zz(0, 1, 0.25);
        let q = c.to_qasm();
        assert_eq!(q.matches("cx q[0], q[1];").count(), 2);
        assert!(q.contains("rz(0.25) q[1];"));
    }

    #[test]
    fn round_trip_without_zz_is_identity() {
        let mut c = Circuit::new(5);
        c.h(0)
            .x(1)
            .y(2)
            .z(3)
            .s(4)
            .sdg(0)
            .t(1)
            .tdg(2)
            .rx(3, 0.1)
            .ry(4, -2.5)
            .rz(0, 1e-7)
            .cx(0, 4)
            .cz(1, 3)
            .swap(2, 0);
        assert_eq!(Circuit::from_qasm(&c.to_qasm()).unwrap(), c);
    }

    #[test]
    fn reemission_is_byte_identical_even_with_zz() {
        let mut c = Circuit::new(3);
        c.h(0).zz(0, 2, -0.75).cx(1, 2).rz(0, 0.125);
        let emitted = c.to_qasm();
        let parsed = Circuit::from_qasm(&emitted).unwrap();
        assert_eq!(parsed.to_qasm(), emitted);
    }

    #[test]
    fn literal_rzz_is_accepted() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nrzz(0.5) q[0], q[1];\n";
        let c = Circuit::from_qasm(src).unwrap();
        assert_eq!(c.gates(), &[Gate::Zz(Qubit::new(0), Qubit::new(1), 0.5)]);
    }

    #[test]
    fn non_finite_angles_are_rejected() {
        for angle in [
            "inf",
            "-inf",
            "NaN",
            "1e999",
            "1e999*pi",
            "inf*pi",
            "pi/1e-308",
        ] {
            let src = format!("qreg q[1]; rz({angle}) q[0];");
            assert!(
                matches!(Circuit::from_qasm(&src), Err(QasmError::Syntax { .. })),
                "angle `{angle}` must be rejected"
            );
        }
    }

    #[test]
    fn pi_expressions_evaluate() {
        let src = "qreg q[1]; rz(pi) q[0]; rz(-pi/2) q[0]; rz(3*pi/4) q[0]; rz(2*pi) q[0];";
        let c = Circuit::from_qasm(src).unwrap();
        let angles: Vec<f64> = c
            .iter()
            .map(|g| match *g {
                Gate::Rz(_, t) => t,
                _ => unreachable!(),
            })
            .collect();
        let pi = std::f64::consts::PI;
        assert_eq!(angles, vec![pi, -pi / 2.0, 3.0 * pi / 4.0, 2.0 * pi]);
    }

    #[test]
    fn comments_whitespace_and_multiline_statements() {
        let src = "// header comment\nOPENQASM 2.0;\nqreg q[2]; // reg\n  cx\n  q[0],\n  q[1];\ncreg c[2];\nbarrier q[0];\n";
        let c = Circuit::from_qasm(src).unwrap();
        assert_eq!(c.gates(), &[Gate::Cx(Qubit::new(0), Qubit::new(1))]);
    }

    #[test]
    fn errors_are_located_and_typed() {
        assert!(matches!(
            Circuit::from_qasm("qreg q[2]; measure q[0] -> c[0];"),
            Err(QasmError::Unsupported { construct, .. }) if construct == "measure"
        ));
        assert!(matches!(
            Circuit::from_qasm("qreg q[2];\nfrobnicate q[0];"),
            Err(QasmError::Unsupported { line: 2, .. })
        ));
        assert!(matches!(
            Circuit::from_qasm("qreg q[2]; h q[9];"),
            Err(QasmError::Circuit(CircuitError::QubitOutOfRange { .. }))
        ));
        assert!(matches!(
            Circuit::from_qasm("qreg q[2]; cz q[0], q[0];"),
            Err(QasmError::Circuit(CircuitError::DuplicateOperands { .. }))
        ));
        assert!(matches!(
            Circuit::from_qasm("h q[0];"),
            Err(QasmError::Syntax { .. })
        ));
        assert!(matches!(
            Circuit::from_qasm("qreg q[2]; rz q[0];"),
            Err(QasmError::Syntax { .. })
        ));
        assert!(matches!(
            Circuit::from_qasm("qreg q[2]; h r[0];"),
            Err(QasmError::Syntax { .. })
        ));
        assert!(Circuit::from_qasm("").is_err());
    }

    #[test]
    fn foreign_register_name_round_trips() {
        let src = "qreg data[3]; h data[1]; cx data[0], data[2];";
        let c = Circuit::from_qasm(src).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.len(), 2);
    }
}

//! The customised QAOA router (Alg. 3).
//!
//! QAOA cost layers apply one `ZZ(γ)` per graph edge. Unlike the generic
//! router, Q-Pilot creates **one persistent ancilla per qubit** (not per
//! gate), recycled only after the whole graph is done. Each stage:
//!
//! 1. picks the remaining edge with the smallest first endpoint; its
//!    ancilla's AOD row becomes the stage's first active row, and the
//!    matching fixes one AOD-column displacement;
//! 2. greedily matches more edges within the same (AOD row, SLM row) pair,
//!    adding active columns while their home/target orders stay aligned
//!    and parked columns still fit in the gaps between targets;
//! 3. walks the remaining AOD rows downward, choosing for each the SLM row
//!    that executes the most edges with **zero undesired interactions**
//!    (every occupied cross must be a remaining edge); rows that cannot
//!    match park on row midpoints, which the 2.5·r_b rule keeps silent;
//! 4. fires the global Rydberg pulse, executing every matched edge.
//!
//! Parked lines sit on grid midpoints (`pitch/2` away from any SLM line),
//! which is safe because the safety radius (2.5 × 1.5 µm) is below half the
//! 10 µm pitch — the geometric precondition called out in
//! [`FpqaConfig`].

use std::collections::{BTreeSet, HashMap, HashSet};

use qpilot_arch::GridCoord;
use qpilot_circuit::Gate;

use crate::cancel::CancelToken;
use crate::error::RouteError;
use crate::legality::PairMatcher;
use crate::motion::{axis_coords, park_col_base, park_row_base, OFFSET_MIN};
use crate::schedule::{
    AncillaId, AtomRef, CompiledProgram, RydbergOp, Schedule, ScheduleBuilder, TransferOp,
};
use crate::FpqaConfig;

/// Options for [`QaoaRouter`] (ablation knobs; defaults reproduce the
/// paper's algorithm with this crate's refinements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QaoaRouterOptions {
    /// How many of the densest (AOD row, SLM row) buckets to evaluate as
    /// stage anchors. `1` approximates the paper's plain "smallest first
    /// edge" rule; larger values search harder for parallel stages.
    pub anchor_candidates: usize,
    /// Whether to grow the column pattern after the row sweep.
    pub column_extension: bool,
}

impl Default for QaoaRouterOptions {
    fn default() -> Self {
        QaoaRouterOptions {
            anchor_candidates: 8,
            column_extension: true,
        }
    }
}

/// The QAOA flying-ancilla router (Alg. 3 of the paper).
///
/// # Example
///
/// ```
/// use qpilot_core::{qaoa::QaoaRouter, FpqaConfig};
///
/// let cfg = FpqaConfig::for_qubits(4, 2);
/// let edges = [(0, 1), (1, 2), (2, 3), (0, 3)];
/// let p = QaoaRouter::new().route_edges(4, &edges, 0.7, &cfg).unwrap();
/// // 2 qubits-worth of create/recycle CNOTs plus one op per edge.
/// assert_eq!(p.stats().two_qubit_gates, 2 * 4 + 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QaoaRouter {
    options: QaoaRouterOptions,
    /// Polled once per matching stage inside each cost layer; the default
    /// token never fires.
    pub(crate) cancel: CancelToken,
}

impl QaoaRouter {
    /// Creates a router with default options.
    pub fn new() -> Self {
        QaoaRouter::default()
    }

    /// Creates a router with explicit options.
    pub fn with_options(options: QaoaRouterOptions) -> Self {
        QaoaRouter {
            options,
            cancel: CancelToken::default(),
        }
    }

    /// Routes one QAOA cost layer: `ZZ(γ)` on every edge, with per-qubit
    /// ancillas created first and recycled last.
    ///
    /// # Errors
    ///
    /// * [`RouteError::TooManyQubits`] if `num_qubits` exceeds the array,
    /// * [`RouteError::InvalidEdge`] on self loops / out-of-range edges,
    /// * [`RouteError::AodTooSmall`] if the AOD grid cannot host one
    ///   ancilla per qubit.
    pub fn route_edges(
        &self,
        num_qubits: u32,
        edges: &[(u32, u32)],
        gamma: f64,
        config: &FpqaConfig,
    ) -> Result<CompiledProgram, RouteError> {
        let mut schedule =
            ScheduleBuilder::new(config.num_data(), config.aod_rows(), config.aod_cols());
        let mut prof = QaoaProfile::start();
        self.append_cost_layer(&mut schedule, num_qubits, edges, gamma, config, &mut prof)?;
        prof.flush();
        Ok(schedule.finish_program())
    }

    /// Routes a full depth-1 QAOA round: Hadamard layer, routed cost layer,
    /// `Rx(β)` mixer — directly comparable against
    /// `Graph::qaoa_circuit(&[γ], &[β])` in simulation.
    ///
    /// # Errors
    ///
    /// See [`QaoaRouter::route_edges`].
    pub fn route_qaoa_round(
        &self,
        num_qubits: u32,
        edges: &[(u32, u32)],
        gamma: f64,
        beta: f64,
        config: &FpqaConfig,
    ) -> Result<CompiledProgram, RouteError> {
        let mut schedule =
            ScheduleBuilder::new(config.num_data(), config.aod_rows(), config.aod_cols());
        schedule.raman((0..num_qubits).map(|q| Gate::H(qpilot_circuit::Qubit::new(q))));
        let mut prof = QaoaProfile::start();
        self.append_cost_layer(&mut schedule, num_qubits, edges, gamma, config, &mut prof)?;
        prof.flush();
        schedule.raman((0..num_qubits).map(|q| Gate::Rx(qpilot_circuit::Qubit::new(q), beta)));
        Ok(schedule.finish_program())
    }

    /// Routes a depth-`p` QAOA program: Hadamard layer, then `p` rounds of
    /// routed cost layer + `Rx(betaK)` mixer. Ancillas are re-created per
    /// round — the mixer invalidates the Z-basis copies, so each cost
    /// layer needs fresh fan-outs (create/recycle appears `2p` times in
    /// the native gate count).
    ///
    /// # Errors
    ///
    /// See [`QaoaRouter::route_edges`].
    ///
    /// # Panics
    ///
    /// Panics if `gammas.len() != betas.len()`.
    pub fn route_qaoa_rounds(
        &self,
        num_qubits: u32,
        edges: &[(u32, u32)],
        gammas: &[f64],
        betas: &[f64],
        config: &FpqaConfig,
    ) -> Result<CompiledProgram, RouteError> {
        assert_eq!(gammas.len(), betas.len(), "gamma/beta length mismatch");
        let mut schedule =
            ScheduleBuilder::new(config.num_data(), config.aod_rows(), config.aod_cols());
        schedule.raman((0..num_qubits).map(|q| Gate::H(qpilot_circuit::Qubit::new(q))));
        // One accumulator across all rounds: a single stage-time sample
        // per route call, like the other routers.
        let mut prof = QaoaProfile::start();
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            self.append_cost_layer(&mut schedule, num_qubits, edges, gamma, config, &mut prof)?;
            schedule.raman((0..num_qubits).map(|q| Gate::Rx(qpilot_circuit::Qubit::new(q), beta)));
        }
        prof.flush();
        Ok(schedule.finish_program())
    }

    fn append_cost_layer(
        &self,
        schedule: &mut ScheduleBuilder,
        num_qubits: u32,
        edges: &[(u32, u32)],
        gamma: f64,
        config: &FpqaConfig,
        prof: &mut QaoaProfile,
    ) -> Result<(), RouteError> {
        if num_qubits > config.num_data() {
            return Err(RouteError::TooManyQubits {
                required: num_qubits,
                available: config.num_data(),
            });
        }
        let mut remaining: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &(a, b) in edges {
            if a == b || a >= num_qubits || b >= num_qubits {
                return Err(RouteError::InvalidEdge { a, b });
            }
            remaining.insert((a.min(b), a.max(b)));
        }
        if remaining.is_empty() {
            return Ok(());
        }

        let slm = config.slm();
        let used_rows = (num_qubits as usize).div_ceil(slm.cols());
        let used_cols = slm.cols().min(num_qubits as usize);
        if schedule.aod_rows < used_rows || schedule.aod_cols < used_cols {
            return Err(RouteError::AodTooSmall {
                required: used_rows.max(used_cols),
                available: schedule.aod_rows.min(schedule.aod_cols),
            });
        }

        // One ancilla per qubit, pinned to the qubit's own cross.
        let ancillas: Vec<AncillaId> = (0..num_qubits).map(|_| schedule.fresh_ancilla()).collect();
        let home = |q: u32| -> GridCoord { config.coord_of(q) };

        schedule.transfer((0..num_qubits).map(|q| TransferOp {
            ancilla: ancillas[q as usize],
            row: home(q).row,
            col: home(q).col,
            load: true,
        }));

        // Aligned position: every ancilla hovers next to its home qubit.
        let aligned_rows: Vec<usize> = (0..used_rows).collect();
        let aligned_cols: Vec<usize> = (0..used_cols).collect();
        let pitch = config.pitch_um();
        let aligned = (
            axis_coords(
                &aligned_rows,
                schedule.aod_rows,
                pitch,
                park_row_base(config),
            ),
            axis_coords(
                &aligned_cols,
                schedule.aod_cols,
                pitch,
                park_col_base(config),
            ),
        );
        let aligned_move = schedule.move_stage(&aligned.0, &aligned.1);
        let num_data = schedule.num_data;
        let h_stage = schedule.raman((0..num_qubits).map(|q| {
            Gate::H(crate::schedule::ancilla_register_qubit(
                num_data,
                ancillas[q as usize],
            ))
        }));
        let create_stage = schedule.rydberg(
            (0..num_qubits)
                .map(|q| RydbergOp::cz(AtomRef::Data(q), AtomRef::Ancilla(ancillas[q as usize]))),
        );
        schedule.repeat_stage(h_stage);

        // Stage loop. Edge buckets are built once and maintained
        // incrementally as edges execute (the pre-PR code re-bucketed all
        // remaining edges every stage, which dominated routing time on
        // large graphs — see ROADMAP "Perf open items").
        let mut buckets = EdgeBuckets::build(&remaining, config);
        prof.lap_setup();
        while !remaining.is_empty() {
            // Stage boundary: stop cleanly before solving the next stage.
            self.cancel.check()?;
            let solution = solve_stage(
                &remaining,
                &buckets,
                config,
                num_qubits,
                used_rows,
                used_cols,
                &self.options,
            );
            debug_assert!(!solution.matched.is_empty(), "stage must match >= 1 edge");
            for &(u, v) in &solution.matched {
                let e = (u.min(v), u.max(v));
                remaining.remove(&e);
                buckets.remove(e.0, e.1, config);
            }
            prof.lap_select();
            let (row_y, col_x) =
                stage_coords(&solution, schedule.schedule(), config, used_rows, used_cols);
            schedule.move_stage(&row_y, &col_x);
            schedule.rydberg(solution.matched.iter().map(|&(src, tgt)| {
                RydbergOp::zz(
                    AtomRef::Ancilla(ancillas[src as usize]),
                    AtomRef::Data(tgt),
                    gamma,
                )
            }));
            prof.lap_emit();
        }

        // Recycle: fly home, uncopy, unload (pool copies of the create
        // stages).
        schedule.repeat_stage(aligned_move);
        schedule.repeat_stage(h_stage);
        schedule.repeat_stage(create_stage);
        schedule.repeat_stage(h_stage);
        schedule.transfer((0..num_qubits).map(|q| TransferOp {
            ancilla: ancillas[q as usize],
            row: home(q).row,
            col: home(q).col,
            load: false,
        }));
        prof.lap_setup();
        Ok(())
    }
}

/// Per-route stage-time accumulator (see [`crate::obs::PhaseClock`]):
/// create/recycle and bucket maintenance count as `setup`, the matching
/// search as `select`, coordinates/moves/pulses as `emit`. Flushed to
/// the QAOA stage histograms once per public `route_*` call.
#[derive(Debug, Default)]
struct QaoaProfile {
    clock: Option<crate::obs::PhaseClock>,
    setup: u64,
    select: u64,
    emit: u64,
}

impl QaoaProfile {
    fn start() -> QaoaProfile {
        QaoaProfile {
            clock: crate::obs::PhaseClock::start(),
            ..QaoaProfile::default()
        }
    }

    fn lap_setup(&mut self) {
        crate::obs::lap(&mut self.clock, &mut self.setup);
    }

    fn lap_select(&mut self) {
        crate::obs::lap(&mut self.clock, &mut self.select);
    }

    fn lap_emit(&mut self) {
        crate::obs::lap(&mut self.clock, &mut self.emit);
    }

    fn flush(&self) {
        if self.clock.is_some() {
            crate::obs::QAOA_SETUP.record_ns(self.setup);
            crate::obs::QAOA_SELECT.record_ns(self.select);
            crate::obs::QAOA_EMIT.record_ns(self.emit);
        }
    }
}

/// A solved stage: which AOD columns/rows are active and which edges fire.
#[derive(Debug, Clone, Default)]
struct StageSolution {
    /// Active `(home AOD column, target SLM column)` pairs, maintained by
    /// the shared incremental matcher from [`crate::legality`].
    active_cols: PairMatcher,
    /// `(home AOD row, target SLM row)`, strictly increasing in both.
    active_rows: Vec<(usize, usize)>,
    /// Matched edges as `(ancilla-owner qubit, SLM target qubit)`.
    matched: Vec<(u32, u32)>,
}

/// Remaining edges bucketed by `(ancilla home row, target SLM row)` in
/// both orientations, maintained incrementally across stages: edges leave
/// their two buckets as they execute instead of the whole structure being
/// rebuilt per stage. Buckets are `BTreeSet`s so iteration order equals
/// the sorted order the per-stage rebuild used to produce — stage
/// construction is unchanged, only its cost is.
#[derive(Debug, Default)]
struct EdgeBuckets {
    map: HashMap<(usize, usize), BTreeSet<(u32, u32)>>,
    /// Every remaining edge in both orientations, sorted — the
    /// column-extension candidate stream, maintained here so stage
    /// construction never re-collects and re-sorts the edge set.
    oriented: BTreeSet<(u32, u32)>,
}

impl EdgeBuckets {
    /// Buckets every remaining (normalised) edge, both orientations.
    fn build(remaining: &BTreeSet<(u32, u32)>, config: &FpqaConfig) -> Self {
        let mut map: HashMap<(usize, usize), BTreeSet<(u32, u32)>> = HashMap::new();
        let mut oriented = BTreeSet::new();
        for &(u, v) in remaining {
            for (src, tgt) in [(u, v), (v, u)] {
                map.entry((config.coord_of(src).row, config.coord_of(tgt).row))
                    .or_default()
                    .insert((src, tgt));
                oriented.insert((src, tgt));
            }
        }
        EdgeBuckets { map, oriented }
    }

    /// Removes an executed edge's two orientations; empty buckets vanish
    /// so the anchor-candidate scan only ever sees live buckets.
    fn remove(&mut self, u: u32, v: u32, config: &FpqaConfig) {
        for (src, tgt) in [(u, v), (v, u)] {
            let key = (config.coord_of(src).row, config.coord_of(tgt).row);
            if let Some(bucket) = self.map.get_mut(&key) {
                bucket.remove(&(src, tgt));
                if bucket.is_empty() {
                    self.map.remove(&key);
                }
            }
            self.oriented.remove(&(src, tgt));
        }
    }
}

/// Greedy stage construction following Alg. 3, with the paper's "maximum
/// matching on the first row" refinement: among the densest (AOD row, SLM
/// row) buckets of remaining edges, build candidate stages (dense and
/// sparse column seeds, plus a post-sweep column-extension pass) and keep
/// the one executing the most edges.
#[allow(clippy::too_many_arguments)]
fn solve_stage(
    remaining: &BTreeSet<(u32, u32)>,
    buckets: &EdgeBuckets,
    config: &FpqaConfig,
    num_qubits: u32,
    used_rows: usize,
    used_cols: usize,
    options: &QaoaRouterOptions,
) -> StageSolution {
    let coord = |q: u32| config.coord_of(q);

    // Candidate anchors: the densest buckets, plus the bucket holding the
    // globally smallest edge (the paper's e0) as a deterministic fallback.
    let &(a0, b0) = remaining.iter().next().expect("non-empty edge set");
    let mut keys: Vec<(usize, usize)> = buckets.map.keys().copied().collect();
    keys.sort_by_key(|k| (std::cmp::Reverse(buckets.map[k].len()), k.0, k.1));
    keys.truncate(options.anchor_candidates.max(1));
    let e0_key = (coord(a0).row, coord(b0).row);
    if !keys.contains(&e0_key) {
        keys.push(e0_key);
    }

    let mut best: Option<StageSolution> = None;
    for key in keys {
        for seed_all in [true, false] {
            let candidate = solve_stage_at(
                remaining,
                config,
                num_qubits,
                used_rows,
                key.0,
                key.1,
                &buckets.map[&key],
                &buckets.oriented,
                seed_all,
                options,
            );
            if best
                .as_ref()
                .map(|b| candidate.matched.len() > b.matched.len())
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
    }
    let sol = best.expect("at least the e0 bucket yields a stage");
    debug_assert!(!sol.matched.is_empty());
    let _ = used_cols;
    sol
}

/// Builds one candidate stage anchored at AOD row `r0` targeting SLM row
/// `y0`. With `seed_all` the first row greedily takes every insertable
/// bucket edge (maximum first-row matching); otherwise only the bucket's
/// first edge seeds the column pattern, which often lets *more rows* match
/// on sparse graphs. A final pass tries to grow the column pattern against
/// the committed rows.
#[allow(clippy::too_many_arguments)]
fn solve_stage_at(
    remaining: &BTreeSet<(u32, u32)>,
    config: &FpqaConfig,
    num_qubits: u32,
    used_rows: usize,
    r0: usize,
    y0: usize,
    bucket: &BTreeSet<(u32, u32)>,
    oriented: &BTreeSet<(u32, u32)>,
    seed_all: bool,
    options: &QaoaRouterOptions,
) -> StageSolution {
    let coord = |q: u32| config.coord_of(q);
    let norm = |u: u32, v: u32| (u.min(v), u.max(v));
    let qubit_at = |row: usize, col: usize| -> Option<u32> {
        config
            .qubit_at(GridCoord::new(row, col))
            .filter(|&q| q < num_qubits)
    };
    let mut sol = StageSolution::default();

    // First-row matching: greedy column insertion over the bucket's edges
    // in sorted order (`BTreeSet` iteration). Each (normalised) edge may
    // seed one orientation only -- both at once would execute it twice in
    // the same pulse.
    let mut seeded: HashSet<(u32, u32)> = HashSet::new();
    for &(src, tgt) in bucket {
        let e = norm(src, tgt);
        if seeded.contains(&e) {
            continue;
        }
        let (hc, tc) = (coord(src).col, coord(tgt).col);
        if sol.active_cols.insert(hc, tc) {
            seeded.insert(e);
            if !seed_all {
                break;
            }
        }
    }

    // Row sweep. Matched set is tracked to reject double execution.
    let mut stage_matched: HashSet<(u32, u32)> = HashSet::new();

    // Commit the anchor row's matches.
    sol.active_rows.push((r0, y0));
    for &(hc, tc) in sol.active_cols.pairs() {
        if let (Some(u), Some(v)) = (qubit_at(r0, hc), qubit_at(y0, tc)) {
            stage_matched.insert(norm(u, v));
            sol.matched.push((u, v));
        }
    }

    let slm_rows = config.slm().rows();
    // Scores a candidate (aod_row, y) placement: Some(count) iff every
    // occupied cross is a fresh remaining edge.
    let score = |aod_row: usize,
                 y: usize,
                 cols: &PairMatcher,
                 matched: &HashSet<(u32, u32)>|
     -> Option<usize> {
        let mut count = 0usize;
        for &(hc, tc) in cols.pairs() {
            if let (Some(u), Some(v)) = (qubit_at(aod_row, hc), qubit_at(y, tc)) {
                let e = norm(u, v);
                if remaining.contains(&e) && !matched.contains(&e) {
                    count += 1;
                } else {
                    return None;
                }
            }
        }
        Some(count)
    };
    let commit = |sol: &mut StageSolution,
                  matched: &mut HashSet<(u32, u32)>,
                  aod_row: usize,
                  y: usize,
                  front: bool| {
        if front {
            sol.active_rows.insert(0, (aod_row, y));
        } else {
            sol.active_rows.push((aod_row, y));
        }
        for &(hc, tc) in sol.active_cols.pairs() {
            if let (Some(u), Some(v)) = (qubit_at(aod_row, hc), qubit_at(y, tc)) {
                matched.insert(norm(u, v));
                sol.matched.push((u, v));
            }
        }
    };

    // Downward sweep: AOD rows below the anchor map to SLM rows below y0.
    let mut last_y = y0;
    let mut parked_since = 0usize;
    for aod_row in (r0 + 1)..used_rows {
        let min_y = last_y + parked_since.max(1);
        let mut best: Option<(usize, usize)> = None; // (count, y)
        for y in min_y..slm_rows {
            if let Some(count) = score(aod_row, y, &sol.active_cols, &stage_matched) {
                if count > 0 && best.map(|(c, _)| count > c).unwrap_or(true) {
                    best = Some((count, y));
                }
            }
        }
        if let Some((_, y)) = best {
            commit(&mut sol, &mut stage_matched, aod_row, y, false);
            last_y = y;
            parked_since = 0;
        } else {
            parked_since += 1;
        }
    }

    // Upward sweep: AOD rows above the anchor map to SLM rows above y0,
    // with the mirrored gap-capacity rule for parked rows.
    let mut first_y = y0 as isize;
    let mut parked_above = 0isize;
    for aod_row in (0..r0).rev() {
        let max_y = first_y - parked_above.max(1);
        let mut best: Option<(usize, usize)> = None;
        let mut y = max_y;
        while y >= 0 {
            if let Some(count) = score(aod_row, y as usize, &sol.active_cols, &stage_matched) {
                if count > 0 && best.map(|(c, _)| count > c).unwrap_or(true) {
                    best = Some((count, y as usize));
                }
            }
            y -= 1;
        }
        if let Some((_, y)) = best {
            commit(&mut sol, &mut stage_matched, aod_row, y, true);
            first_y = y as isize;
            parked_above = 0;
        } else {
            parked_above += 1;
        }
    }

    // Column extension: with the rows fixed, try to grow the column
    // pattern. A new column pair is legal iff every committed row's cross
    // lands on a fresh remaining edge (or on a missing atom). Candidates
    // stream from the incrementally-maintained oriented set; the filter
    // snapshot keeps the original semantics (candidates were collected
    // against the pre-extension matched set, while per-row legality uses
    // the live one).
    if !options.column_extension {
        return sol;
    }
    let pre_extension = stage_matched.clone();
    for &(src, tgt) in oriented {
        if pre_extension.contains(&norm(src, tgt)) {
            continue;
        }
        let (hc, tc) = (coord(src).col, coord(tgt).col);
        if !sol.active_cols.can_insert(hc, tc) {
            continue;
        }
        let mut new_matches: Vec<(u32, u32)> = Vec::new();
        let mut ok = true;
        for &(aod_row, y) in &sol.active_rows {
            if let (Some(u), Some(v)) = (qubit_at(aod_row, hc), qubit_at(y, tc)) {
                let e = norm(u, v);
                if remaining.contains(&e)
                    && !stage_matched.contains(&e)
                    && !new_matches.iter().any(|&(a, b)| norm(a, b) == e)
                {
                    new_matches.push((u, v));
                } else {
                    ok = false;
                    break;
                }
            }
        }
        if ok && !new_matches.is_empty() {
            let inserted = sol.active_cols.insert(hc, tc);
            debug_assert!(inserted, "can_insert pre-checked");
            for &(u, v) in &new_matches {
                stage_matched.insert(norm(u, v));
                sol.matched.push((u, v));
            }
        }
    }
    sol
}

/// Physical coordinates for a solved stage: active lines at `target + off`,
/// parked lines on midpoints (leading / in-between / trailing).
fn stage_coords(
    sol: &StageSolution,
    schedule: &Schedule,
    config: &FpqaConfig,
    used_rows: usize,
    used_cols: usize,
) -> (Vec<f64>, Vec<f64>) {
    let pitch = config.pitch_um();
    let off = OFFSET_MIN + 0.35;
    let half = pitch / 2.0;

    let build = |active: &[(usize, usize)], used: usize, total: usize| -> Vec<f64> {
        let mut coords = vec![f64::NAN; total];
        for &(h, t) in active {
            coords[h] = t as f64 * pitch + off;
        }
        // Leading parked lines: midpoints walking up/left from the first
        // active target.
        let first_active_home = active.first().map(|&(h, _)| h).unwrap_or(used);
        let first_active_target = active.first().map(|&(_, t)| t).unwrap_or(0);
        for (i, coord) in coords.iter_mut().enumerate().take(first_active_home) {
            let steps = first_active_home - i;
            *coord = first_active_target as f64 * pitch - half - (steps - 1) as f64 * pitch;
        }
        // In-between parked lines: midpoints after the left neighbour.
        for w in 0..active.len().saturating_sub(1) {
            let (lh, lt) = active[w];
            let (rh, _) = active[w + 1];
            for (j, i) in ((lh + 1)..rh).enumerate() {
                coords[i] = lt as f64 * pitch + half + j as f64 * pitch;
            }
        }
        // Trailing lines (parked and beyond `used`).
        let (last_home, last_target) = active.last().copied().unwrap_or((0, 0));
        let mut j = 0;
        for coord in coords.iter_mut().take(total).skip(last_home + 1) {
            if coord.is_nan() {
                *coord = last_target as f64 * pitch + half + (j + 1) as f64 * pitch;
                j += 1;
            }
        }
        debug_assert!(coords.iter().all(|c| !c.is_nan()));
        debug_assert!(coords.windows(2).all(|w| w[0] < w[1]), "{coords:?}");
        coords
    };

    (
        build(&sol.active_rows, used_rows, schedule.aod_rows),
        build(sol.active_cols.pairs(), used_cols, schedule.aod_cols),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_schedule;

    #[test]
    fn column_matcher_orders() {
        let mut active = PairMatcher::new();
        assert!(active.insert(1, 2));
        // Left of (1 -> 2): home 0, target must be < 2.
        assert!(active.insert(0, 0));
        assert_eq!(active.pairs(), &[(0, 0), (1, 2)]);
        // Inversion rejected.
        assert!(!active.insert(2, 1));
        // Append right.
        assert!(active.insert(3, 3));
        assert_eq!(active.len(), 3);
    }

    #[test]
    fn column_matcher_gap_capacity() {
        let mut active = PairMatcher::new();
        assert!(active.insert(0, 0));
        // home 3 leaves 2 parked columns between; target 1 offers only
        // 1 midpoint slot -> reject.
        assert!(!active.insert(3, 1));
        // target 3 offers 3 slots -> accept.
        assert!(active.insert(3, 3));
    }

    #[test]
    fn route_ring_graph() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let edges = [(0, 1), (1, 2), (2, 3), (0, 3)];
        let p = QaoaRouter::new().route_edges(4, &edges, 0.5, &cfg).unwrap();
        let report = validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        assert_eq!(report.leftover_ancillas, 0);
        // 2n create/recycle + one per edge.
        assert_eq!(p.stats().two_qubit_gates, 8 + 4);
        assert_eq!(p.schedule().num_ancillas, 4);
    }

    #[test]
    fn fig7_example_parallelism() {
        // Fig. 7: 12 qubits on 3x4; first stage executes 4 edges in
        // parallel: (0,1), (1,3), (4,9), (5,11).
        let cfg = FpqaConfig::for_qubits(12, 4);
        let edges = [(0u32, 1u32), (1, 3), (4, 9), (5, 11)];
        let p = QaoaRouter::new()
            .route_edges(12, &edges, 0.3, &cfg)
            .unwrap();
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        // create + 1 stage + recycle = 3 pulses.
        assert_eq!(
            p.stats().two_qubit_depth,
            3,
            "expected single-stage execution: {}",
            p.schedule()
        );
    }

    #[test]
    fn all_edges_execute_exactly_once() {
        let cfg = FpqaConfig::for_qubits(9, 3);
        let edges = [(0, 1), (0, 2), (1, 2), (3, 4), (4, 8), (2, 5), (6, 7)];
        let p = QaoaRouter::new().route_edges(9, &edges, 0.4, &cfg).unwrap();
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        let zz_count: usize = p
            .schedule()
            .rydberg_stages()
            .map(|ops| {
                ops.iter()
                    .filter(|o| matches!(o.kind, crate::RydbergKind::Zz(_)))
                    .count()
            })
            .sum();
        assert_eq!(zz_count, edges.len());
    }

    #[test]
    fn depth_grows_with_conflicts() {
        // A star graph forces serial stages: every edge shares qubit 0's
        // SLM atom as target or its ancilla as source.
        let cfg = FpqaConfig::for_qubits(9, 3);
        let star: Vec<(u32, u32)> = (1..9).map(|q| (0, q)).collect();
        let p = QaoaRouter::new().route_edges(9, &star, 0.1, &cfg).unwrap();
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        assert!(p.stats().two_qubit_depth > 3);
    }

    #[test]
    fn invalid_edges_rejected() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let r = QaoaRouter::new();
        assert!(matches!(
            r.route_edges(4, &[(0, 0)], 0.1, &cfg),
            Err(RouteError::InvalidEdge { .. })
        ));
        assert!(matches!(
            r.route_edges(4, &[(0, 7)], 0.1, &cfg),
            Err(RouteError::InvalidEdge { .. })
        ));
    }

    #[test]
    fn empty_graph_is_trivial() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let p = QaoaRouter::new().route_edges(4, &[], 0.1, &cfg).unwrap();
        assert_eq!(p.stats().two_qubit_gates, 0);
    }

    #[test]
    fn qaoa_round_wraps_cost_layer() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let edges = [(0, 1), (2, 3)];
        let p = QaoaRouter::new()
            .route_qaoa_round(4, &edges, 0.7, 0.3, &cfg)
            .unwrap();
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        // 4 H + mixers 4 RX + ancilla hadamards.
        assert!(p.stats().one_qubit_gates >= 8);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let p = QaoaRouter::new()
            .route_edges(4, &[(0, 1), (1, 0)], 0.2, &cfg)
            .unwrap();
        // Normalised: a single edge.
        assert_eq!(p.stats().two_qubit_gates, 8 + 1);
    }
}

//! Baseline device topologies used in the paper's evaluation (§4.1):
//!
//! * the 127-qubit IBM-Washington-style **heavy-hex** graph,
//! * a 16×16 **square lattice** of fixed atoms (4 neighbours), and
//! * a 16×16 **triangular lattice** of fixed atoms (6 neighbours),
//!
//! plus parameterised generators so tests can use small instances.
//!
//! The heavy-hex generator follows IBM's Eagle r1 structure: seven long
//! east-west rows (15 qubits each; the first and last rows drop one end
//! site, giving 14) joined by rows of four bridge qubits whose attachment
//! columns alternate between `{0,4,8,12}` and `{2,6,10,14}`. This
//! reproduces the 127-qubit, degree-≤3 heavy-hexagon topology class of the
//! real machine (exact IBM qubit numbering is not preserved; only the
//! topology matters for routing).

use crate::CouplingGraph;

/// Square lattice of `rows × cols` atoms, 4-neighbour connectivity.
pub fn square_lattice(rows: usize, cols: usize) -> CouplingGraph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    CouplingGraph::from_edges(format!("square-{rows}x{cols}"), rows * cols, edges)
}

/// Triangular lattice of `rows × cols` atoms: square lattice plus one
/// diagonal per cell, giving interior degree 6.
pub fn triangular_lattice(rows: usize, cols: usize) -> CouplingGraph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols {
                edges.push((idx(r, c), idx(r + 1, c + 1)));
            }
        }
    }
    CouplingGraph::from_edges(format!("triangular-{rows}x{cols}"), rows * cols, edges)
}

/// The 16×16 square fixed-atom-array baseline from the paper.
pub fn faa_square_16x16() -> CouplingGraph {
    square_lattice(16, 16)
}

/// The 16×16 triangular fixed-atom-array baseline from the paper.
pub fn faa_triangular_16x16() -> CouplingGraph {
    triangular_lattice(16, 16)
}

/// Parameterised heavy-hex generator.
///
/// `long_rows` is the number of east-west qubit rows; `row_len` their
/// nominal length. Bridge rows with `row_len.div_ceil(4)` qubits sit
/// between consecutive long rows at alternating column offsets 0 and 2.
/// The first long row drops its last column and the final long row drops
/// its first column, matching the Eagle boundary.
pub fn heavy_hex(long_rows: usize, row_len: usize) -> CouplingGraph {
    assert!(long_rows >= 2, "heavy-hex needs at least two long rows");
    assert!(row_len >= 3, "heavy-hex rows must have >= 3 columns");

    // Columns present in each long row.
    let row_cols: Vec<Vec<usize>> = (0..long_rows)
        .map(|r| {
            if r == 0 {
                (0..row_len - 1).collect()
            } else if r == long_rows - 1 {
                (1..row_len).collect()
            } else {
                (0..row_len).collect()
            }
        })
        .collect();

    // Assign ids in reading order: long row 0, bridges 0, long row 1, ...
    let mut id_of: Vec<std::collections::HashMap<usize, usize>> = Vec::new();
    let mut next_id = 0usize;
    let mut bridge_ids: Vec<Vec<(usize, usize)>> = Vec::new(); // (col, id)
    for r in 0..long_rows {
        let mut map = std::collections::HashMap::new();
        for &c in &row_cols[r] {
            map.insert(c, next_id);
            next_id += 1;
        }
        id_of.push(map);
        if r + 1 < long_rows {
            let offset = if r % 2 == 0 { 0 } else { 2 };
            let mut bridges = Vec::new();
            let mut c = offset;
            while c < row_len {
                // Only place a bridge where both rows have the column.
                if id_of[r].contains_key(&c) && row_cols[r + 1].contains(&c) {
                    bridges.push((c, next_id));
                    next_id += 1;
                }
                c += 4;
            }
            bridge_ids.push(bridges);
        }
    }

    let mut edges = Vec::new();
    // Horizontal edges along long rows.
    for (r, cols) in row_cols.iter().enumerate() {
        for w in cols.windows(2) {
            if w[1] == w[0] + 1 {
                edges.push((id_of[r][&w[0]], id_of[r][&w[1]]));
            }
        }
    }
    // Bridge edges.
    for (r, bridges) in bridge_ids.iter().enumerate() {
        for &(c, id) in bridges {
            edges.push((id_of[r][&c], id));
            edges.push((id, id_of[r + 1][&c]));
        }
    }
    CouplingGraph::from_edges(format!("heavy-hex-{next_id}"), next_id, edges)
}

/// The 127-qubit IBM-Washington-style heavy-hex baseline.
pub fn ibm_washington() -> CouplingGraph {
    let g = heavy_hex(7, 15);
    debug_assert_eq!(g.num_qubits(), 127);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_lattice_degree_and_count() {
        let g = square_lattice(4, 4);
        assert_eq!(g.num_qubits(), 16);
        assert_eq!(g.edges().len(), 2 * 4 * 3); // 24
        assert_eq!(g.degree(5), 4); // interior
        assert_eq!(g.degree(0), 2); // corner
        assert!(g.is_connected());
    }

    #[test]
    fn triangular_lattice_degree() {
        let g = triangular_lattice(4, 4);
        assert_eq!(g.degree(5), 6); // interior
        assert!(g.is_connected());
        // edges: square 24 + diagonals 9 = 33
        assert_eq!(g.edges().len(), 33);
    }

    #[test]
    fn faa_baselines_are_16x16() {
        assert_eq!(faa_square_16x16().num_qubits(), 256);
        assert_eq!(faa_triangular_16x16().num_qubits(), 256);
    }

    #[test]
    fn washington_has_127_qubits() {
        let g = ibm_washington();
        assert_eq!(g.num_qubits(), 127);
        assert!(g.is_connected());
    }

    #[test]
    fn washington_is_heavy_hex_degree_bounded() {
        let g = ibm_washington();
        for q in 0..g.num_qubits() {
            assert!(g.degree(q) <= 3, "qubit {q} has degree {}", g.degree(q));
        }
        // Eagle has 144 edges.
        assert_eq!(g.edges().len(), 144);
    }

    #[test]
    fn heavy_hex_small_instance() {
        let g = heavy_hex(3, 5);
        // Long rows: cols 0..=3 (4), 0..=4 (5), 1..=4 (4) = 13 qubits.
        // Bridges row0-1 at offset 0 -> col 0 only; row1-2 at offset 2 ->
        // col 2 only: 2 bridge qubits.
        assert_eq!(g.num_qubits(), 15);
        assert!(g.is_connected());
        for q in 0..g.num_qubits() {
            assert!(g.degree(q) <= 3);
        }
    }

    #[test]
    fn bridges_alternate_offsets() {
        let g = heavy_hex(3, 15);
        // 14 + 15 + 14 long-row qubits... rows: 0 -> 14, 1 -> 15, 2 -> 14;
        // bridges row0-1 at {0,4,8,12}: 4, row1-2 at {2,6,10,14}: 4.
        assert_eq!(g.num_qubits(), 14 + 15 + 14 + 8);
    }
}

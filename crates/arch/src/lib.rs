//! Hardware models for the Q-Pilot compiler.
//!
//! Two families of devices appear in the paper:
//!
//! 1. The **FPQA** (field programmable qubit array): a fixed grid of SLM
//!    traps holding data atoms plus a movable 2D AOD grid holding ancilla
//!    atoms. AOD rows and columns move as units and must never cross
//!    ([`AodGrid`] enforces this). Two-qubit gates happen wherever two atoms
//!    sit within the Rydberg radius when the global Rydberg laser fires
//!    ([`RydbergModel`]).
//! 2. **Fixed-coupling baselines**: the 127-qubit IBM-Washington-style
//!    heavy-hex graph, and 16×16 square / triangular fixed-atom lattices
//!    ([`CouplingGraph`] and [`devices`]).
//!
//! Physical constants (movement model, gate fidelities, coherence time) live
//! in [`PhysicalParams`] and follow the values used in the paper's Eq. 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aod;
mod coupling;
pub mod devices;
mod dist;
mod geometry;
mod params;
mod rydberg;
mod slm;

pub use aod::{AodError, AodGrid, AodMove};
pub use coupling::CouplingGraph;
pub use dist::{DistanceMatrix, UNREACHABLE};
pub use geometry::{GridCoord, Position};
pub use params::PhysicalParams;
pub use rydberg::{InteractionCheck, RydbergModel};
pub use slm::SlmArray;

//! Fig. 15(b): distribution of per-stage 2Q parallelism of the QAOA router
//! at 20, 50 and 100 qubits, for random 3-regular graphs and for the
//! denser Fig. 13 family (edge probability 0.3).
//!
//! Usage: `fig15b_parallelism [--sizes 20,50,100] [--seed 10]`

use qpilot_bench::{arg_list, arg_num, fpqa_config, route_workload, Histogram};
use qpilot_core::compile::Workload;
use qpilot_core::evaluator::evaluate;
use qpilot_workloads::graphs::{erdos_renyi, random_regular, Graph};

fn main() {
    let sizes = arg_list("--sizes", &[20, 50, 100]);
    let seed = arg_num("--seed", 10u64);
    for (family, make) in [
        (
            "3-regular",
            Box::new(move |n: u32| random_regular(n, 3, seed).expect("regular graph"))
                as Box<dyn Fn(u32) -> Graph>,
        ),
        (
            "edge prob 0.3",
            Box::new(move |n: u32| erdos_renyi(n, 0.3, seed)),
        ),
    ] {
        println!("\n== Fig. 15(b): parallel 2Q gates per stage (QAOA, {family}) ==");
        run_family(&sizes, &make);
    }
    println!("(paper: average parallelism 3.32 / 4.13 / 4.90 at 20 / 50 / 100 qubits)");
}

fn run_family(sizes: &[u32], make: &dyn Fn(u32) -> Graph) {
    for &n in sizes {
        let graph = make(n);
        let cfg = fpqa_config(n);
        let program = route_workload(
            &Workload::qaoa_cost_layer(n, graph.edges().to_vec(), 0.7),
            &cfg,
        );
        let report = evaluate(program.schedule(), &cfg);
        // Interior stages only: drop the create/recycle pulses whose
        // parallelism is just n.
        let stage_par: Vec<usize> = report
            .per_stage_parallelism
            .iter()
            .copied()
            .take(report.per_stage_parallelism.len().saturating_sub(1))
            .skip(1)
            .collect();
        let mean = stage_par.iter().sum::<usize>() as f64 / stage_par.len().max(1) as f64;
        let max = stage_par.iter().copied().max().unwrap_or(1);
        let mut hist = Histogram::new(0.5, max as f64 + 0.5, max.min(16));
        for &c in &stage_par {
            hist.add(c as f64);
        }
        println!(
            "\n{n} qubits: {} edges, {} cost stages, mean parallelism {mean:.2}",
            graph.num_edges(),
            stage_par.len()
        );
        print!("{}", hist.render());
    }
}

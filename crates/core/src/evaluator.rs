//! The fast performance evaluator (§3.1) and the Eq. 5 error model.
//!
//! [`evaluate`] replays a schedule's motion and produces every cost metric
//! the paper reports: two-qubit depth and gate counts, movement distances
//! and times, the execution-time breakdown of Fig. 10, the per-stage
//! parallelism histogram of Fig. 15(b), and the circuit fidelity of Eq. 5:
//!
//! ```text
//! ε = 1 − f2^{G2} · f1^{G1} · exp(−N · Σ_i T0·sqrt(D_i/d0) / T2)
//! ```
//!
//! with `G1`/`G2` the gate counts, `N` the number of atoms used (SLM data
//! plus peak AOD ancillas), `D_i` the largest atom displacement of move
//! stage `i`, `d0` the array pitch, and `T0`, `T2` from
//! [`PhysicalParams`](qpilot_arch::PhysicalParams). [`movement_trace`]
//! exposes the raw per-atom motion data behind Fig. 9.

use std::collections::HashMap;

use qpilot_arch::{AodGrid, Position};

use crate::{AncillaId, FpqaConfig, Schedule, StageRef};

/// Complete cost report for a compiled schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceReport {
    /// Two-qubit depth (number of Rydberg pulses).
    pub two_qubit_depth: usize,
    /// Native two-qubit gate count.
    pub two_qubit_gates: usize,
    /// One-qubit gate count.
    pub one_qubit_gates: usize,
    /// Number of AOD reconfigurations.
    pub moves: usize,
    /// Atom-transfer operations.
    pub transfers: usize,
    /// Largest displacement per move stage (µm).
    pub per_move_max_um: Vec<f64>,
    /// Total over stages of the per-stage max displacement (µm).
    pub total_move_um: f64,
    /// Parallel 2Q gates per Rydberg stage (Fig. 15b histogram input).
    pub per_stage_parallelism: Vec<usize>,
    /// Time spent moving atoms (s).
    pub movement_time_s: f64,
    /// Time spent in 1Q (Raman) stages (s).
    pub raman_time_s: f64,
    /// Time spent in 2Q (Rydberg) pulses (s).
    pub rydberg_time_s: f64,
    /// Time spent on atom transfers (s).
    pub transfer_time_s: f64,
    /// Atoms used: data qubits + peak simultaneous ancillas.
    pub atoms_used: usize,
    /// Eq. 5 circuit fidelity estimate.
    pub fidelity: f64,
}

impl PerformanceReport {
    /// Total wall-clock execution time (s).
    pub fn total_time_s(&self) -> f64 {
        self.movement_time_s + self.raman_time_s + self.rydberg_time_s + self.transfer_time_s
    }

    /// Eq. 5 overall error rate `ε = 1 − fidelity`.
    pub fn error_rate(&self) -> f64 {
        1.0 - self.fidelity
    }

    /// Mean 2Q parallelism over Rydberg stages.
    pub fn mean_parallelism(&self) -> f64 {
        if self.per_stage_parallelism.is_empty() {
            return 0.0;
        }
        self.per_stage_parallelism.iter().sum::<usize>() as f64
            / self.per_stage_parallelism.len() as f64
    }
}

/// Evaluates `schedule` under `config`'s physical parameters.
pub fn evaluate(schedule: &Schedule, config: &FpqaConfig) -> PerformanceReport {
    let params = config.params();
    let stats = schedule.stats();
    let mut aod = initial_grid(schedule, config);
    let mut loaded: HashMap<AncillaId, (usize, usize)> = HashMap::new();

    let mut per_move_max = Vec::new();
    let mut per_stage_parallelism = Vec::new();
    let mut movement_time = 0.0;
    let mut raman_time = 0.0;
    let mut rydberg_time = 0.0;
    let mut transfer_time = 0.0;

    for stage in schedule.stages() {
        match stage {
            StageRef::Move { row_y, col_x } => {
                let mv = aod
                    .move_to(row_y.to_vec(), col_x.to_vec())
                    .expect("evaluated schedule must have legal moves");
                let occ: Vec<(usize, usize)> = loaded.values().copied().collect();
                let d = mv.max_displacement(occ.iter());
                per_move_max.push(d);
                movement_time += params.move_time_s(d);
            }
            StageRef::Transfer(ops) => {
                for op in ops {
                    if op.load {
                        loaded.insert(op.ancilla, (op.row, op.col));
                    } else {
                        loaded.remove(&op.ancilla);
                    }
                }
                // Transfers within one stage happen in parallel.
                if !ops.is_empty() {
                    transfer_time += params.t_transfer_s;
                }
            }
            StageRef::Raman(gates) => {
                if !gates.is_empty() {
                    raman_time += params.t_1q_s;
                }
            }
            StageRef::Rydberg(ops) => {
                per_stage_parallelism.push(ops.len());
                rydberg_time += params.t_2q_s;
            }
        }
    }

    let atoms_used = schedule.num_data as usize + stats.peak_ancillas;
    let decoherence: f64 = (-(atoms_used as f64) * movement_time / params.t2_s).exp();
    let fidelity = params.fidelity_2q.powi(stats.two_qubit_gates as i32)
        * params.fidelity_1q.powi(stats.one_qubit_gates as i32)
        * decoherence;

    PerformanceReport {
        two_qubit_depth: stats.two_qubit_depth,
        two_qubit_gates: stats.two_qubit_gates,
        one_qubit_gates: stats.one_qubit_gates,
        moves: stats.moves,
        transfers: stats.transfers,
        total_move_um: per_move_max.iter().sum(),
        per_move_max_um: per_move_max,
        per_stage_parallelism,
        movement_time_s: movement_time,
        raman_time_s: raman_time,
        rydberg_time_s: rydberg_time,
        transfer_time_s: transfer_time,
        atoms_used,
        fidelity,
    }
}

/// One atom's displacement during one move step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomMove {
    /// Which ancilla moved.
    pub ancilla: AncillaId,
    /// Position before the move.
    pub from: Position,
    /// Position after the move.
    pub to: Position,
}

impl AtomMove {
    /// Distance travelled (µm).
    pub fn distance_um(&self) -> f64 {
        self.from.distance(&self.to)
    }
}

/// Raw movement data for Fig. 9: for each move stage, the displacement of
/// every loaded ancilla.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MovementTrace {
    /// Per move stage, the per-atom moves.
    pub steps: Vec<Vec<AtomMove>>,
}

impl MovementTrace {
    /// Number of move steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total distance travelled by `ancilla` (µm).
    pub fn total_distance_um(&self, ancilla: AncillaId) -> f64 {
        self.steps
            .iter()
            .flatten()
            .filter(|m| m.ancilla == ancilla)
            .map(|m| m.distance_um())
            .sum()
    }

    /// Number of nonzero movements per ancilla, as `(ancilla, count)`.
    pub fn movements_per_atom(&self) -> Vec<(AncillaId, usize)> {
        let mut counts: HashMap<AncillaId, usize> = HashMap::new();
        for m in self.steps.iter().flatten() {
            if m.distance_um() > 1e-9 {
                *counts.entry(m.ancilla).or_default() += 1;
            }
        }
        let mut v: Vec<(AncillaId, usize)> = counts.into_iter().collect();
        v.sort_by_key(|&(a, _)| a);
        v
    }
}

/// Replays the schedule recording every ancilla displacement (Fig. 9 data).
pub fn movement_trace(schedule: &Schedule, config: &FpqaConfig) -> MovementTrace {
    let mut aod = initial_grid(schedule, config);
    let mut loaded: HashMap<AncillaId, (usize, usize)> = HashMap::new();
    let mut trace = MovementTrace::default();
    for stage in schedule.stages() {
        match stage {
            StageRef::Move { row_y, col_x } => {
                let mv = aod
                    .move_to(row_y.to_vec(), col_x.to_vec())
                    .expect("traced schedule must have legal moves");
                let mut step = Vec::new();
                for (&anc, &(r, c)) in &loaded {
                    step.push(AtomMove {
                        ancilla: anc,
                        from: Position::new(mv.old_col_x[c], mv.old_row_y[r]),
                        to: Position::new(mv.new_col_x[c], mv.new_row_y[r]),
                    });
                }
                step.sort_by_key(|m| m.ancilla);
                trace.steps.push(step);
            }
            StageRef::Transfer(ops) => {
                for op in ops {
                    if op.load {
                        loaded.insert(op.ancilla, (op.row, op.col));
                    } else {
                        loaded.remove(&op.ancilla);
                    }
                }
            }
            _ => {}
        }
    }
    trace
}

fn initial_grid(schedule: &Schedule, config: &FpqaConfig) -> AodGrid {
    let pitch = config.pitch_um();
    let slm = config.slm();
    let rows: Vec<f64> = (0..schedule.aod_rows)
        .map(|r| (slm.rows() + 1 + r) as f64 * pitch)
        .collect();
    let cols: Vec<f64> = (0..schedule.aod_cols)
        .map(|c| (slm.cols() + 1 + c) as f64 * pitch)
        .collect();
    AodGrid::new(rows, cols).expect("parked coordinates are increasing")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::GenericRouter;
    use qpilot_circuit::Circuit;

    fn compiled() -> (Schedule, FpqaConfig) {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 2).cz(1, 3);
        let cfg = FpqaConfig::for_qubits(4, 2);
        let p = GenericRouter::new().route(&c, &cfg).unwrap();
        (p.into_schedule(), cfg)
    }

    #[test]
    fn report_matches_schedule_stats() {
        let (s, cfg) = compiled();
        let stats = s.stats();
        let report = evaluate(&s, &cfg);
        assert_eq!(report.two_qubit_depth, stats.two_qubit_depth);
        assert_eq!(report.two_qubit_gates, stats.two_qubit_gates);
        assert_eq!(report.moves, stats.moves);
        assert_eq!(report.per_move_max_um.len(), stats.moves);
    }

    #[test]
    fn fidelity_is_probability() {
        let (s, cfg) = compiled();
        let report = evaluate(&s, &cfg);
        assert!(report.fidelity > 0.0 && report.fidelity <= 1.0);
        assert!(report.error_rate() >= 0.0 && report.error_rate() < 1.0);
    }

    #[test]
    fn lower_2q_fidelity_lowers_circuit_fidelity() {
        let (s, cfg) = compiled();
        let good = evaluate(&s, &cfg);
        let noisy_cfg = cfg.clone().with_params(cfg.params().with_fidelity_2q(0.9));
        let bad = evaluate(&s, &noisy_cfg);
        assert!(bad.fidelity < good.fidelity);
    }

    #[test]
    fn movement_dominates_time() {
        // The paper's Fig. 10: movement is the largest timeline component.
        let (s, cfg) = compiled();
        let report = evaluate(&s, &cfg);
        assert!(report.movement_time_s > report.rydberg_time_s);
        assert!(report.total_time_s() > report.movement_time_s);
    }

    #[test]
    fn parallelism_histogram_counts_ops() {
        let (s, cfg) = compiled();
        let report = evaluate(&s, &cfg);
        assert_eq!(report.per_stage_parallelism.len(), report.two_qubit_depth);
        assert!(report.mean_parallelism() >= 1.0);
    }

    #[test]
    fn trace_records_each_loaded_atom() {
        let (s, cfg) = compiled();
        let trace = movement_trace(&s, &cfg);
        assert_eq!(trace.num_steps(), s.stats().moves);
        // Both gates share a stage -> two ancillas moving together.
        assert!(trace.steps.iter().any(|step| step.len() == 2));
        let total: f64 = trace.total_distance_um(AncillaId(0));
        assert!(total > 0.0);
        assert!(!trace.movements_per_atom().is_empty());
    }

    #[test]
    fn empty_schedule_report() {
        let cfg = FpqaConfig::for_qubits(2, 2);
        let s = Schedule::new(2, 2, 2);
        let report = evaluate(&s, &cfg);
        assert_eq!(report.two_qubit_depth, 0);
        assert_eq!(report.total_time_s(), 0.0);
        assert!((report.fidelity - 1.0).abs() < 1e-12);
    }
}

//! Fig. 12: quantum-simulation circuits (random Pauli strings) — compiled
//! 2Q gate count and depth, Q-Pilot's quantum-simulation router vs the
//! three baselines compiling the reference ladder circuits.
//!
//! Usage: `fig12_qsim [--sizes 5,10,20,50,100] [--probs 0.1,0.5]
//!                    [--strings 100] [--seed 3]`

use qpilot_bench::{
    arg_list, arg_num, arg_value, compile_on_baselines, fpqa_config, geomean_ratio, route_workload,
    Table,
};
use qpilot_circuit::Circuit;
use qpilot_core::compile::Workload;
use qpilot_workloads::pauli::{random_pauli_strings, PauliWorkloadConfig};

fn main() {
    let sizes = arg_list("--sizes", &[5, 10, 20, 50, 100]);
    let probs: Vec<f64> = arg_value("--probs")
        .map(|v| v.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![0.1, 0.5]);
    let num_strings = arg_num("--strings", 100usize);
    let seed = arg_num("--seed", 3u64);
    let theta = 0.31;

    for &p in &probs {
        println!("\n== Fig. 12: quantum simulation, Pauli prob = {p} ({num_strings} strings) ==");
        let mut table = Table::new(&[
            "qubits",
            "FPQA 2Q",
            "FPQA depth",
            "rect 2Q",
            "rect depth",
            "tri 2Q",
            "tri depth",
            "IBM 2Q",
            "IBM depth",
        ]);
        let mut ours_depth = Vec::new();
        let mut ours_gates = Vec::new();
        let mut best_base_depth = Vec::new();
        let mut best_base_gates = Vec::new();

        for &n in &sizes {
            let strings = random_pauli_strings(&PauliWorkloadConfig {
                num_qubits: n as usize,
                num_strings,
                pauli_probability: p,
                seed,
            });
            let cfg = fpqa_config(n);
            let program = route_workload(&Workload::pauli_strings(strings.clone(), theta), &cfg);
            let stats = program.stats();

            // Reference circuit for the baselines: the textbook ladders.
            let mut reference = Circuit::new(n);
            for s in &strings {
                reference.extend_from(&s.evolution_circuit(theta).remapped(n, |q| q));
            }
            let baselines = compile_on_baselines(&reference);

            let mut row = vec![
                n.to_string(),
                stats.two_qubit_gates.to_string(),
                stats.two_qubit_depth.to_string(),
            ];
            let mut depths = Vec::new();
            let mut gates = Vec::new();
            for b in &baselines {
                match b {
                    Some(r) => {
                        row.push(r.two_qubit_gates.to_string());
                        row.push(r.two_qubit_depth.to_string());
                        gates.push(r.two_qubit_gates as f64);
                        depths.push(r.two_qubit_depth as f64);
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
            }
            table.row(row);
            if let (Some(bd), Some(bg)) = (
                depths.iter().copied().reduce(f64::min),
                gates.iter().copied().reduce(f64::min),
            ) {
                ours_depth.push(stats.two_qubit_depth as f64);
                ours_gates.push(stats.two_qubit_gates as f64);
                best_base_depth.push(bd);
                best_base_gates.push(bg);
            }
        }
        table.print();
        println!(
            "geomean vs best baseline: depth {:.2}x, 2Q gates {:.2}x  (paper at 100q: depth 27.7x, gates 6.9x for p=0.5; gates 6.3x for p=0.1)",
            geomean_ratio(&ours_depth, &best_base_depth),
            geomean_ratio(&ours_gates, &best_base_gates),
        );
    }
}

//! Property-based invariants of the routers: every compiled schedule must
//! pass the independent geometric validator, recycle all ancillas, and
//! respect the paper's cost accounting — for arbitrary workloads.

use proptest::prelude::*;

use qpilot_arch::GridCoord;
use qpilot_circuit::{Circuit, PauliString};
use qpilot_core::generic::{GenericRouter, GenericRouterOptions};
use qpilot_core::generic_reference::route_reference;
use qpilot_core::legality::{
    greedy_legal_subset, greedy_max_subset, set_compatible, GatePlacement, LegalitySet,
};
use qpilot_core::qaoa::QaoaRouter;
use qpilot_core::qsim::QsimRouter;
use qpilot_core::validate::validate_schedule;
use qpilot_core::FpqaConfig;

fn arb_cz_circuit(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec((0..n, 0..n - 1), 1..max_gates).prop_map(move |pairs| {
        let mut c = Circuit::new(n);
        for (a, b) in pairs {
            let b = if b >= a { b + 1 } else { b };
            c.cz(a, b);
        }
        c
    })
}

fn arb_pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(0u8..4, n).prop_map(|codes| {
        let paulis = codes
            .iter()
            .map(|c| match c {
                0 => qpilot_circuit::Pauli::I,
                1 => qpilot_circuit::Pauli::X,
                2 => qpilot_circuit::Pauli::Y,
                _ => qpilot_circuit::Pauli::Z,
            })
            .collect();
        PauliString::new(paulis)
    })
}

fn arb_edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n - 1), 1..max_edges).prop_map(move |pairs| {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (a, b) in pairs {
            let b = if b >= a { b + 1 } else { b };
            let e = (a.min(b), a.max(b));
            if !edges.contains(&e) {
                edges.push(e);
            }
        }
        edges
    })
}

fn arb_placements(max: usize) -> impl Strategy<Value = Vec<GatePlacement>> {
    prop::collection::vec(((0usize..5, 0usize..5), (0usize..5, 0usize..5)), 1..max).prop_map(
        |items| {
            items
                .into_iter()
                .map(|((sr, sc), (tr, tc))| {
                    GatePlacement::new(GridCoord::new(sr, sc), GridCoord::new(tr, tc))
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_subset_is_always_compatible(placements in arb_placements(12)) {
        let subset = greedy_legal_subset(&placements);
        prop_assert!(!subset.is_empty());
        let chosen: Vec<GatePlacement> = subset.iter().map(|&i| placements[i]).collect();
        prop_assert!(set_compatible(&chosen));
        // Maximality: every rejected candidate conflicts with the subset.
        for (i, p) in placements.iter().enumerate() {
            if !subset.contains(&i) {
                let mut extended = chosen.clone();
                extended.push(*p);
                prop_assert!(!set_compatible(&extended), "candidate {i} wrongly rejected");
            }
        }
    }

    /// The incremental `LegalitySet` greedy must reproduce the reference
    /// pairwise greedy exactly: same indices, so subset sizes can never
    /// regress.
    #[test]
    fn incremental_greedy_matches_reference(placements in arb_placements(16)) {
        let reference = greedy_legal_subset(&placements);
        let mut set = LegalitySet::new(5, 5);
        let mut out = Vec::new();
        greedy_max_subset(&placements, usize::MAX, &mut set, &mut out);
        prop_assert_eq!(&out, &reference);
        prop_assert!(out.len() >= reference.len(), "subset size regressed");
        // The indexed fast path and the single-pass scan agree on every
        // candidate against every prefix of the accepted set.
        set.clear();
        for p in &placements {
            prop_assert_eq!(set.admits(p), set.admits_scan(p));
            set.try_insert(p);
        }
    }

    /// The optimised router (arena IR) and the preserved pre-PR router
    /// (frozen pre-arena IR) emit byte-identical serialised schedules on
    /// arbitrary CZ workloads — each through its own writer.
    #[test]
    fn incremental_router_is_byte_identical(c in arb_cz_circuit(9, 18), cols in 2usize..5) {
        let cfg = FpqaConfig::for_qubits(9, cols);
        let ours = GenericRouter::new().route(&c, &cfg).expect("routing");
        let reference = route_reference(&c, &cfg, GenericRouterOptions::default())
            .expect("reference routing");
        prop_assert_eq!(
            qpilot_core::wire::schedule_to_json(ours.schedule()),
            reference.to_json()
        );
        prop_assert_eq!(ours.stats(), &reference.stats());
    }

    #[test]
    fn generic_router_schedules_validate(c in arb_cz_circuit(9, 15), cols in 2usize..5) {
        let cfg = FpqaConfig::for_qubits(9, cols);
        let program = GenericRouter::new().route(&c, &cfg).expect("routing");
        let report = validate_schedule(program.schedule(), &cfg).expect("validator");
        prop_assert_eq!(report.leftover_ancillas, 0);
        // Cost model: every routed CZ costs exactly 3 pulses of its stage.
        prop_assert_eq!(program.stats().two_qubit_gates % 3, 0);
        prop_assert_eq!(program.stats().two_qubit_depth % 3, 0);
        prop_assert_eq!(program.stats().two_qubit_gates / 3, c.two_qubit_count());
    }

    #[test]
    fn qsim_router_schedules_validate(
        strings in prop::collection::vec(arb_pauli_string(6), 1..4),
        cols in 2usize..4,
    ) {
        let cfg = FpqaConfig::for_qubits(6, cols);
        let program = QsimRouter::new().route_strings(&strings, 0.4, &cfg).expect("routing");
        let report = validate_schedule(program.schedule(), &cfg).expect("validator");
        prop_assert_eq!(report.leftover_ancillas, 0);
        // The uncompute mirror makes 2Q cost even, and the rotation is 1Q.
        prop_assert_eq!(program.stats().two_qubit_gates % 2, 0);
    }

    #[test]
    fn qaoa_router_schedules_validate(edges in arb_edges(9, 14), cols in 2usize..5) {
        let cfg = FpqaConfig::for_qubits(9, cols);
        let program = QaoaRouter::new().route_edges(9, &edges, 0.7, &cfg).expect("routing");
        let report = validate_schedule(program.schedule(), &cfg).expect("validator");
        prop_assert_eq!(report.leftover_ancillas, 0);
        // Exactly 2n + |E| native 2Q gates (create/recycle + one per edge).
        prop_assert_eq!(program.stats().two_qubit_gates, 2 * 9 + edges.len());
        // Every edge fires exactly once as a ZZ op.
        let zz: usize = program.schedule().rydberg_stages().map(|ops| ops.iter()
            .filter(|o| matches!(o.kind, qpilot_core::RydbergKind::Zz(_))).count()).sum();
        prop_assert_eq!(zz, edges.len());
    }

    #[test]
    fn lowered_circuits_match_stats(c in arb_cz_circuit(6, 10)) {
        let cfg = FpqaConfig::for_qubits(6, 3);
        let program = GenericRouter::new().route(&c, &cfg).expect("routing");
        let lowered = program.schedule().to_circuit();
        prop_assert_eq!(lowered.two_qubit_count(), program.stats().two_qubit_gates);
        // The schedule-level depth is an upper bound on the circuit-level
        // depth (pulses are globally sequenced on hardware).
        prop_assert!(lowered.two_qubit_depth() <= program.stats().two_qubit_depth);
    }

    #[test]
    fn raman_gates_count_matches_lowering(c in arb_cz_circuit(6, 8)) {
        let cfg = FpqaConfig::for_qubits(6, 3);
        let program = GenericRouter::new().route(&c, &cfg).expect("routing");
        let lowered = program.schedule().to_circuit();
        prop_assert_eq!(lowered.single_qubit_count(), program.stats().one_qubit_gates);
    }
}

//! Q-Pilot: field programmable qubit array compilation with flying ancillas.
//!
//! This facade crate re-exports the full Q-Pilot workspace behind one
//! dependency. See the individual crates for details:
//!
//! * [`circuit`] — quantum-circuit IR (gates, DAG, depth metrics),
//! * [`arch`] — FPQA hardware model and baseline coupling graphs,
//! * [`sim`] — state-vector simulator used for equivalence checking,
//! * [`workloads`] — benchmark generators (random, Pauli strings, QAOA),
//! * [`core`] — the flying-ancilla routers and performance evaluator,
//! * [`baselines`] — SWAP-based and solver-based comparison compilers,
//! * [`service`] — compilation-as-a-service: content-addressed schedule
//!   cache, worker pool, and the `qpilotd`/`qpilot-cli` wire protocol.
//!
//! # Quickstart
//!
//! The front door is the unified compile pipeline in
//! [`core::compile`](mod@qpilot_core::compile): wrap any workload family
//! (circuit, Pauli strings, QAOA graph) in a `Workload` and compile —
//! the router is inferred from the family.
//!
//! ```
//! use qpilot::circuit::Circuit;
//! use qpilot::core::compile::{compile, Workload};
//! use qpilot::core::FpqaConfig;
//!
//! let mut c = Circuit::new(4);
//! c.cz(0, 1).cz(1, 2).cz(2, 3).cz(3, 0);
//! let config = FpqaConfig::square(2); // 2x2 SLM array
//! let program = compile(&Workload::circuit(c), &config).unwrap();
//! assert!(program.stats().two_qubit_gates >= 4);
//! ```

pub use qpilot_arch as arch;
pub use qpilot_baselines as baselines;
pub use qpilot_circuit as circuit;
pub use qpilot_core as core;
pub use qpilot_service as service;
pub use qpilot_sim as sim;
pub use qpilot_workloads as workloads;

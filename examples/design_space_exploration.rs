//! Router-in-the-loop design-space exploration (§3.1 / Fig. 14): sweep the
//! SLM/AOD array width for one workload and pick the width minimising
//! compiled depth, using the fast performance evaluator as feedback.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use qpilot::core::compile::{compile, Workload};
use qpilot::core::dse::{best_width, sweep_widths};
use qpilot::workloads::graphs::erdos_renyi;
use qpilot::workloads::pauli::{random_pauli_strings, PauliWorkloadConfig};

fn main() {
    let n = 60u32;
    let widths = [4usize, 8, 15, 30, 60];

    // Workload A: QAOA on a random graph.
    let graph = erdos_renyi(n, 0.3, 7);
    let edges = graph.edges().to_vec();
    let workload = Workload::qaoa_cost_layer(n, edges.clone(), 0.7);
    let qaoa = sweep_widths(n, &widths, |cfg| compile(&workload, cfg));
    println!("QAOA ({} edges) depth per array width:", edges.len());
    for r in &qaoa {
        println!(
            "  width {:>3}: depth {:>5}, 2Q gates {:>6}, est. fidelity {:.4}",
            r.width, r.report.two_qubit_depth, r.report.two_qubit_gates, r.report.fidelity
        );
    }
    let best = best_width(&qaoa).expect("some width works");
    println!(
        "  -> best width {} (depth {})",
        best.width, best.report.two_qubit_depth
    );

    // Workload B: quantum simulation strings.
    let strings = random_pauli_strings(&PauliWorkloadConfig {
        num_qubits: n as usize,
        num_strings: 30,
        pauli_probability: 0.3,
        seed: 7,
    });
    let workload = Workload::pauli_strings(strings, 0.31);
    let qsim = sweep_widths(n, &widths, |cfg| compile(&workload, cfg));
    println!("\nquantum simulation (30 strings, p = 0.3) depth per width:");
    for r in &qsim {
        println!(
            "  width {:>3}: depth {:>5}, 2Q gates {:>6}",
            r.width, r.report.two_qubit_depth, r.report.two_qubit_gates
        );
    }
    let best = best_width(&qsim).expect("some width works");
    println!(
        "  -> best width {} (depth {})",
        best.width, best.report.two_qubit_depth
    );

    println!(
        "\nAs in the paper's Fig. 14, the optimum differs per workload family: \
         wide arrays favour QAOA's row matching, while moderate widths trade \
         row-level parallelism against movement for quantum simulation."
    );
}

//! Data-parallel map over OS threads — re-exported from `qpilot_core::par`.
//!
//! The implementation moved into core so the QAOA anchor search can share
//! it (bench depends on core, not the other way around). Bench callers
//! keep the old paths: `qpilot_bench::{parallel_map, default_threads}`.

pub use qpilot_core::par::{default_threads, parallel_map};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbalanced_items_all_complete() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 4, |&x| {
            // Skewed work per item.
            (0..(x % 7) * 1000).fold(x, |acc, _| acc.wrapping_mul(31))
        });
        assert_eq!(out.len(), 64);
    }
}

//! Property-based end-to-end checks: random workloads, routed and then
//! *proven* equivalent in the state-vector simulator. Case counts are kept
//! moderate since each case runs a dense simulation.

use proptest::prelude::*;

use qpilot::circuit::{optimize, Circuit, Gate, Pauli, PauliString, Qubit};
use qpilot::core::{generic::GenericRouter, qaoa::QaoaRouter, qsim::QsimRouter, FpqaConfig};
use qpilot::sim::equiv::{random_state_fidelity, verify_compiled};

fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let pair = (0..n, 0..n - 1).prop_map(move |(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        (Qubit::new(a), Qubit::new(b))
    });
    prop_oneof![
        q.clone().prop_map(|a| Gate::H(Qubit::new(a))),
        q.clone().prop_map(|a| Gate::T(Qubit::new(a))),
        (q, -3.0f64..3.0).prop_map(|(a, t)| Gate::Ry(Qubit::new(a), t)),
        pair.clone().prop_map(|(a, b)| Gate::Cx(a, b)),
        pair.clone().prop_map(|(a, b)| Gate::Cz(a, b)),
        (pair, -3.0f64..3.0).prop_map(|((a, b), t)| Gate::Zz(a, b, t)),
    ]
}

fn arb_circuit(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 1..max_gates)
        .prop_map(move |gates| Circuit::from_gates(n, gates).expect("valid gates"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generic_router_preserves_unitary(c in arb_circuit(5, 12)) {
        let cfg = FpqaConfig::for_qubits(5, 3);
        let program = GenericRouter::new().route(&c, &cfg).expect("routing");
        let res = verify_compiled(&program.schedule().to_circuit(),
                                  &c.remapped(5, |q| q));
        prop_assert!(res.equivalent, "{res:?}");
    }

    #[test]
    fn qsim_router_preserves_unitary(
        codes in prop::collection::vec(0u8..4, 5),
        theta in -2.0f64..2.0,
    ) {
        let paulis: Vec<Pauli> = codes.iter().map(|c| match c {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        }).collect();
        let string = PauliString::new(paulis);
        let cfg = FpqaConfig::for_qubits(5, 3);
        let program = QsimRouter::new()
            .route_strings(std::slice::from_ref(&string), theta, &cfg)
            .expect("routing");
        let reference = string.evolution_circuit(theta).remapped(5, |q| q);
        let res = verify_compiled(&program.schedule().to_circuit(), &reference);
        prop_assert!(res.equivalent, "string {string}: {res:?}");
    }

    #[test]
    fn qaoa_router_preserves_unitary(
        raw_edges in prop::collection::vec((0u32..5, 0u32..4), 1..8),
        gamma in -2.0f64..2.0,
    ) {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (a, b) in raw_edges {
            let b = if b >= a { b + 1 } else { b };
            let e = (a.min(b), a.max(b));
            if !edges.contains(&e) {
                edges.push(e);
            }
        }
        let cfg = FpqaConfig::for_qubits(5, 3);
        let program = QaoaRouter::new()
            .route_edges(5, &edges, gamma, &cfg)
            .expect("routing");
        let mut reference = Circuit::new(5);
        for &(a, b) in &edges {
            reference.zz(a, b, gamma);
        }
        let res = verify_compiled(&program.schedule().to_circuit(), &reference);
        prop_assert!(res.equivalent, "edges {edges:?}: {res:?}");
    }

    #[test]
    fn peephole_preserves_unitary(c in arb_circuit(5, 20)) {
        let (opt, _) = optimize::peephole(&c);
        // Peephole only removes/merges gates; same width.
        let fid = random_state_fidelity(&c, &opt, 99);
        prop_assert!(fid > 1.0 - 1e-9, "fidelity {fid}");
    }
}

/// Random Clifford circuits: the stabilizer tableau and the dense simulator
/// must agree on circuit equivalence.
fn arb_clifford(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = {
        let q = 0..n;
        let pair = (0..n, 0..n - 1).prop_map(move |(a, b)| {
            let b = if b >= a { b + 1 } else { b };
            (Qubit::new(a), Qubit::new(b))
        });
        prop_oneof![
            q.clone().prop_map(|a| Gate::H(Qubit::new(a))),
            q.clone().prop_map(|a| Gate::S(Qubit::new(a))),
            q.prop_map(|a| Gate::Sdg(Qubit::new(a))),
            pair.clone().prop_map(|(a, b)| Gate::Cx(a, b)),
            pair.prop_map(|(a, b)| Gate::Cz(a, b)),
        ]
    };
    prop::collection::vec(gate, 1..max_gates)
        .prop_map(move |gates| Circuit::from_gates(n, gates).expect("valid gates"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tableau_and_dense_simulator_agree(
        a in arb_clifford(4, 16),
        tweak in proptest::option::of(0u32..4),
    ) {
        use qpilot::sim::stabilizer::clifford_equivalent;
        let mut b = a.clone();
        if let Some(q) = tweak {
            b.z(q);
        }
        let tableau_eq = clifford_equivalent(&a, &b).expect("clifford");
        let dense_eq = random_state_fidelity(&a, &b, 7) > 1.0 - 1e-9;
        prop_assert_eq!(tableau_eq, dense_eq);
    }
}

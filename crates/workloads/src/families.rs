//! Circuit-family generators for the ancilla-vs-SWAP depth comparison.
//!
//! quantum-navigator's `benchmark_ancilla_vs_swap.py` compares bus-mediated
//! (flying-ancilla) routing against SWAP insertion across a fixed family
//! set: QAOA, QFT, VQE, GHZ and random circuits. QAOA and random circuits
//! already live in [`crate::graphs`] / [`crate::random`]; this module adds
//! the remaining three:
//!
//! * [`qft`] — the quantum Fourier transform: controlled rotations on all
//!   pairs `(i, j)` with `i < j`, so `O(n²)` two-qubit gates between
//!   increasingly distant qubits — the worst case for SWAP routing,
//! * [`vqe_ansatz`] — a hardware-efficient VQE ansatz: layers of `Ry`/`Rz`
//!   rotations followed by a linear CX entangler chain,
//! * [`ghz`] — GHZ-state preparation via a CX chain from qubit 0.
//!
//! All generators are deterministic; [`vqe_ansatz`] is seeded.

use qpilot_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Appends a controlled-phase `CP(theta)` on `(control, target)` using the
/// native gate set: `CP(θ) = Rz(c, θ/2) · Rz(t, θ/2) · ZZ(c, t, −θ/2)` up
/// to global phase.
fn controlled_phase(c: &mut Circuit, control: u32, target: u32, theta: f64) {
    c.rz(control, theta / 2.0);
    c.rz(target, theta / 2.0);
    c.zz(control, target, -theta / 2.0);
}

/// The `n`-qubit quantum Fourier transform (without the final qubit
/// reversal): `H` on each qubit followed by controlled rotations
/// `CP(π/2^{j−i})` for every pair `i < j` — `n(n−1)/2` two-qubit gates.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qft(n: u32) -> Circuit {
    assert!(n > 0, "qft needs at least one qubit");
    let mut c = Circuit::with_capacity(n, (n as usize * (n as usize + 1)) / 2);
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            let theta = std::f64::consts::PI / f64::from(1u32 << (j - i).min(30));
            controlled_phase(&mut c, j, i, theta);
        }
    }
    c
}

/// A hardware-efficient VQE ansatz: `layers` repetitions of a per-qubit
/// `Ry`/`Rz` rotation layer followed by a linear CX entangler chain
/// (`0→1, 1→2, …`), closing with one final rotation layer. Angles are
/// drawn deterministically from `seed`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn vqe_ansatz(n: u32, layers: usize, seed: u64) -> Circuit {
    assert!(n > 0, "vqe ansatz needs at least one qubit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_capacity(n, layers * 3 * n as usize + 2 * n as usize);
    let rotation_layer = |c: &mut Circuit, rng: &mut StdRng| {
        for q in 0..n {
            c.ry(q, rng.gen_range(0.0..std::f64::consts::TAU));
            c.rz(q, rng.gen_range(0.0..std::f64::consts::TAU));
        }
    };
    for _ in 0..layers {
        rotation_layer(&mut c, &mut rng);
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
        }
    }
    rotation_layer(&mut c, &mut rng);
    c
}

/// GHZ-state preparation: `H` on qubit 0, then a CX chain `0→1, 1→2, …` —
/// `n − 1` two-qubit gates whose fixed-hardware depth is linear but whose
/// flying-ancilla depth collapses via fan-out.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz(n: u32) -> Circuit {
    assert!(n > 0, "ghz needs at least one qubit");
    let mut c = Circuit::with_capacity(n, n as usize);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_has_all_pairs() {
        let c = qft(6);
        assert_eq!(c.two_qubit_count(), 15); // 6*5/2
        assert_eq!(c.num_qubits(), 6);
        // Every pair (i, j), i < j appears exactly once as a ZZ.
        let mut pairs = std::collections::HashSet::new();
        for g in c.iter() {
            if let qpilot_circuit::Gate::Zz(a, b, _) = g {
                assert!(pairs.insert((a.raw().min(b.raw()), a.raw().max(b.raw()))));
            }
        }
        assert_eq!(pairs.len(), 15);
    }

    #[test]
    fn qft_single_qubit_stays_trivial() {
        let c = qft(1);
        assert_eq!(c.two_qubit_count(), 0);
        assert_eq!(c.single_qubit_count(), 1);
    }

    #[test]
    fn vqe_is_deterministic_in_seed() {
        assert_eq!(vqe_ansatz(8, 3, 7), vqe_ansatz(8, 3, 7));
        assert_ne!(vqe_ansatz(8, 3, 7), vqe_ansatz(8, 3, 8));
        let c = vqe_ansatz(8, 3, 7);
        assert_eq!(c.two_qubit_count(), 3 * 7); // layers * (n-1)
        assert_eq!(c.single_qubit_count(), 4 * 2 * 8); // (layers+1) rotation layers
    }

    #[test]
    fn ghz_is_a_chain() {
        let c = ghz(10);
        assert_eq!(c.two_qubit_count(), 9);
        assert_eq!(c.single_qubit_count(), 1);
        assert_eq!(c.two_qubit_depth(), 9);
    }
}

//! Fig. 15(a): overall circuit error rate (Eq. 5) vs two-qubit gate error
//! rate, for three small workloads: a random 6Q circuit (two 2Q gates per
//! qubit), QAOA on a random 3-regular graph, and 5Q quantum simulation
//! with 100 Pauli strings at p = 0.1.
//!
//! Usage: `fig15a_error [--seed 8]`

use qpilot_bench::{arg_num, fpqa_config, route_workload, Table};
use qpilot_core::compile::Workload;
use qpilot_core::evaluator::evaluate;
use qpilot_core::{CompiledProgram, FpqaConfig};
use qpilot_workloads::graphs::random_regular;
use qpilot_workloads::pauli::{random_pauli_strings, PauliWorkloadConfig};
use qpilot_workloads::random::{random_circuit, RandomCircuitConfig};

fn main() {
    let seed = arg_num("--seed", 8u64);

    // Compile the three programs once.
    let programs: Vec<(&str, FpqaConfig, CompiledProgram)> = vec![
        {
            let c = random_circuit(&RandomCircuitConfig::paper(6, 2, seed));
            let cfg = fpqa_config(6);
            let p = route_workload(&Workload::circuit(c), &cfg);
            ("random 6Q (2x 2Q/qubit)", cfg, p)
        },
        {
            let g = random_regular(6, 3, seed).expect("regular graph");
            let cfg = fpqa_config(6);
            let p = route_workload(&Workload::qaoa_cost_layer(6, g.edges().to_vec(), 0.7), &cfg);
            ("QAOA 3-regular 6Q", cfg, p)
        },
        {
            let strings = random_pauli_strings(&PauliWorkloadConfig::paper(5, 0.1, seed));
            let cfg = fpqa_config(5);
            let p = route_workload(&Workload::pauli_strings(strings, 0.31), &cfg);
            ("qsim 5Q, 100 strings p=0.1", cfg, p)
        },
    ];

    println!("== Fig. 15(a): circuit error rate vs 2Q gate error rate ==");
    let mut table = Table::new(&["2Q error", "random 6Q", "QAOA 3-reg", "qsim 5Q"]);
    for exp in (1..=6).rev() {
        let err2q = 10f64.powi(-exp);
        let mut row = vec![format!("1e-{exp}")];
        for (_, cfg, program) in &programs {
            let noisy = cfg
                .clone()
                .with_params(cfg.params().with_fidelity_2q(1.0 - err2q));
            let report = evaluate(program.schedule(), &noisy);
            row.push(format!("{:.4}", report.error_rate()));
        }
        table.row(row);
    }
    table.print();
    println!("(paper: error rates below 0.5 once the 2Q error rate is below 1e-3)");
    for (name, cfg, program) in &programs {
        let r = evaluate(program.schedule(), cfg);
        println!(
            "  {name}: {} 2Q gates, depth {}, {} atoms",
            r.two_qubit_gates, r.two_qubit_depth, r.atoms_used
        );
    }
}

//! §4.3 scalability: compile time at 500 / 1000 / 2000 qubits for QAOA
//! (edge prob 0.5), quantum simulation (100 random Pauli strings) and
//! random circuits of depth 10.
//!
//! Usage: `scalability [--sizes 500,1000,2000] [--families qaoa,qsim,random]`
//!
//! The QAOA 2000q instance has ~1M edges; expect minutes, as in the paper
//! (129.5 s reported).

use qpilot_bench::{arg_list, arg_value, route_workload, timed, Table};
use qpilot_core::compile::Workload;
use qpilot_core::FpqaConfig;
use qpilot_workloads::graphs::erdos_renyi;
use qpilot_workloads::pauli::{random_pauli_strings, PauliWorkloadConfig};
use qpilot_workloads::random::random_circuit_with_depth;

fn main() {
    let sizes = arg_list("--sizes", &[500, 1000, 2000]);
    let families: Vec<String> = arg_value("--families")
        .map(|v| v.split(',').map(|s| s.trim().to_lowercase()).collect())
        .unwrap_or_else(|| vec!["qaoa".into(), "qsim".into(), "random".into()]);
    let seed = 1u64;

    println!("== Scalability: compile time (s) ==");
    let mut table = Table::new(&["family", "qubits", "work items", "compile (s)", "2Q depth"]);

    for &n in &sizes {
        let cfg = FpqaConfig::square_for(n);
        if families.iter().any(|f| f == "qaoa") {
            let graph = erdos_renyi(n, 0.5, seed);
            let workload = Workload::qaoa_cost_layer(n, graph.edges().to_vec(), 0.7);
            let (program, secs) = timed(|| route_workload(&workload, &cfg));
            table.row(vec![
                "QAOA p=0.5".into(),
                n.to_string(),
                format!("{} edges", graph.num_edges()),
                format!("{secs:.2}"),
                program.stats().two_qubit_depth.to_string(),
            ]);
        }
        if families.iter().any(|f| f == "qsim") {
            let strings = random_pauli_strings(&PauliWorkloadConfig {
                num_qubits: n as usize,
                num_strings: 100,
                pauli_probability: 0.1,
                seed,
            });
            let workload = Workload::pauli_strings(strings, 0.31);
            let (program, secs) = timed(|| route_workload(&workload, &cfg));
            table.row(vec![
                "qsim 100 strings".into(),
                n.to_string(),
                "100 strings".into(),
                format!("{secs:.2}"),
                program.stats().two_qubit_depth.to_string(),
            ]);
        }
        if families.iter().any(|f| f == "random") {
            let circuit = random_circuit_with_depth(n, 10, seed);
            let workload = Workload::circuit(circuit.clone());
            let (program, secs) = timed(|| route_workload(&workload, &cfg));
            table.row(vec![
                "random depth 10".into(),
                n.to_string(),
                format!("{} gates", circuit.len()),
                format!("{secs:.2}"),
                program.stats().two_qubit_depth.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "(paper: QAOA 1.51/10.75/129.50 s, qsim 6.91/14.28/30.48 s, random 2.64/8.70/32.31 s)"
    );
}

//! Fig. 16: advantage of the application-specific routers over the generic
//! router, for quantum simulation and QAOA.
//!
//! Usage: `fig16_specific_vs_generic [--sizes 5,10,20,50,100]
//!                                   [--strings 100] [--seed 13]`

use qpilot_bench::{arg_list, arg_num, fpqa_config, geomean_ratio, route_workload, Table};
use qpilot_circuit::Circuit;
use qpilot_core::compile::Workload;
use qpilot_workloads::graphs::erdos_renyi;
use qpilot_workloads::pauli::{random_pauli_strings, PauliWorkloadConfig};

fn main() {
    let sizes = arg_list("--sizes", &[5, 10, 20, 50, 100]);
    let num_strings = arg_num("--strings", 100usize);
    let seed = arg_num("--seed", 13u64);
    let theta = 0.31;

    // Quantum simulation: specific router vs generic router on ladders.
    println!("== Fig. 16: quantum simulation (pauli p = 0.3, {num_strings} strings) ==");
    let mut table = Table::new(&[
        "qubits",
        "specific 2Q",
        "specific depth",
        "generic 2Q",
        "generic depth",
    ]);
    let (mut sd, mut sg, mut gd, mut gg) = (vec![], vec![], vec![], vec![]);
    for &n in &sizes {
        let strings = random_pauli_strings(&PauliWorkloadConfig {
            num_qubits: n as usize,
            num_strings,
            pauli_probability: 0.3,
            seed,
        });
        let cfg = fpqa_config(n);
        let specific = route_workload(&Workload::pauli_strings(strings.clone(), theta), &cfg);
        let mut ladder = Circuit::new(n);
        for s in &strings {
            ladder.extend_from(&s.evolution_circuit(theta).remapped(n, |q| q));
        }
        let generic = route_workload(&Workload::circuit(ladder), &cfg);
        table.row(vec![
            n.to_string(),
            specific.stats().two_qubit_gates.to_string(),
            specific.stats().two_qubit_depth.to_string(),
            generic.stats().two_qubit_gates.to_string(),
            generic.stats().two_qubit_depth.to_string(),
        ]);
        sd.push(specific.stats().two_qubit_depth as f64);
        sg.push(specific.stats().two_qubit_gates as f64);
        gd.push(generic.stats().two_qubit_depth as f64);
        gg.push(generic.stats().two_qubit_gates as f64);
    }
    table.print();
    println!(
        "geomean advantage: depth {:.2}x, 2Q gates {:.2}x  (paper: 8.8x depth, 1.5x gates)",
        geomean_ratio(&sd, &gd),
        geomean_ratio(&sg, &gg),
    );

    // QAOA: specific router vs generic router on the ZZ circuit.
    println!("\n== Fig. 16: QAOA (edge prob = 0.3) ==");
    let mut table = Table::new(&[
        "qubits",
        "specific 2Q",
        "specific depth",
        "generic 2Q",
        "generic depth",
    ]);
    let (mut sd, mut sg, mut gd, mut gg) = (vec![], vec![], vec![], vec![]);
    for &n in &sizes {
        let graph = erdos_renyi(n, 0.3, seed);
        if graph.num_edges() == 0 {
            continue;
        }
        let cfg = fpqa_config(n);
        let specific = route_workload(
            &Workload::qaoa_cost_layer(n, graph.edges().to_vec(), 0.7),
            &cfg,
        );
        let mut zz_circuit = Circuit::new(n);
        for &(a, b) in graph.edges() {
            zz_circuit.zz(a, b, 0.7);
        }
        let generic = route_workload(&Workload::circuit(zz_circuit), &cfg);
        table.row(vec![
            n.to_string(),
            specific.stats().two_qubit_gates.to_string(),
            specific.stats().two_qubit_depth.to_string(),
            generic.stats().two_qubit_gates.to_string(),
            generic.stats().two_qubit_depth.to_string(),
        ]);
        sd.push(specific.stats().two_qubit_depth as f64);
        sg.push(specific.stats().two_qubit_gates as f64);
        gd.push(generic.stats().two_qubit_depth as f64);
        gg.push(generic.stats().two_qubit_gates as f64);
    }
    table.print();
    println!(
        "geomean advantage: depth {:.2}x, 2Q gates {:.2}x  (paper: 10.1x depth, 2.8x gates)",
        geomean_ratio(&sd, &gd),
        geomean_ratio(&sg, &gg),
    );
}

//! The [`Circuit`] container.

use std::fmt;

use crate::{CircuitError, Gate, Operands, Qubit};

/// An ordered list of gates over a fixed-width qubit register.
///
/// `Circuit` is the unit of work handed to routers and simulators. Gates are
/// stored in program order; dependency structure is derived on demand via
/// [`DependencyDag`](crate::DependencyDag).
///
/// Builder-style helpers (`h`, `cx`, `cz`, …) take raw `u32` indices for
/// ergonomics and panic on invalid operands; the checked [`Circuit::push`]
/// returns a [`CircuitError`] instead.
///
/// # Example
///
/// ```
/// use qpilot_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0);
/// bell.cx(0, 1);
/// assert_eq!(bell.len(), 2);
/// assert_eq!(bell.two_qubit_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circuit {
    num_qubits: u32,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates an empty circuit with capacity reserved for `capacity` gates.
    pub fn with_capacity(num_qubits: u32, capacity: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::with_capacity(capacity),
        }
    }

    /// Creates a circuit from parts, validating every gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if any gate references a qubit at or beyond
    /// `num_qubits`, or a two-qubit gate has duplicate operands.
    pub fn from_gates(
        num_qubits: u32,
        gates: impl IntoIterator<Item = Gate>,
    ) -> Result<Self, CircuitError> {
        let mut c = Circuit::new(num_qubits);
        for g in gates {
            c.push(g)?;
        }
        Ok(c)
    }

    /// The register width.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of gates in the circuit.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Validates a gate against this circuit's register.
    ///
    /// # Errors
    ///
    /// See [`Circuit::from_gates`].
    pub fn validate(&self, gate: &Gate) -> Result<(), CircuitError> {
        match gate.operands() {
            Operands::One(q) => {
                if q.raw() >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        qubit: q,
                        num_qubits: self.num_qubits,
                    });
                }
            }
            Operands::Two(a, b) => {
                for q in [a, b] {
                    if q.raw() >= self.num_qubits {
                        return Err(CircuitError::QubitOutOfRange {
                            qubit: q,
                            num_qubits: self.num_qubits,
                        });
                    }
                }
                if a == b {
                    return Err(CircuitError::DuplicateOperands { qubit: a });
                }
            }
        }
        Ok(())
    }

    /// Appends a gate after validation.
    ///
    /// # Errors
    ///
    /// See [`Circuit::from_gates`].
    pub fn push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        self.validate(&gate)?;
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a gate, panicking on invalid operands.
    ///
    /// # Panics
    ///
    /// Panics if the gate fails [`Circuit::validate`].
    pub fn push_unchecked(&mut self, gate: Gate) {
        self.push(gate).expect("invalid gate");
    }

    /// Appends all gates of `other` (which must have the same width or
    /// narrower).
    ///
    /// # Panics
    ///
    /// Panics if `other` references qubits beyond this circuit's width.
    pub fn extend_from(&mut self, other: &Circuit) {
        for g in other.iter() {
            self.push_unchecked(*g);
        }
    }

    /// Returns the circuit that applies this circuit's inverse.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::with_capacity(self.num_qubits, self.len());
        for g in self.gates.iter().rev() {
            inv.gates.push(g.inverse());
        }
        inv
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit gates.
    pub fn single_qubit_count(&self) -> usize {
        self.len() - self.two_qubit_count()
    }

    /// Circuit depth counting only two-qubit gates, i.e. the number of
    /// parallel two-qubit layers — the paper's primary depth metric.
    ///
    /// Single-qubit gates are transparent: they neither add depth nor
    /// synchronise qubits.
    pub fn two_qubit_depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits as usize];
        let mut depth = 0;
        for g in &self.gates {
            if let Operands::Two(a, b) = g.operands() {
                let d = level[a.index()].max(level[b.index()]) + 1;
                level[a.index()] = d;
                level[b.index()] = d;
                depth = depth.max(d);
            }
        }
        depth
    }

    /// Full circuit depth where every gate (1Q and 2Q) occupies one layer on
    /// its operands.
    pub fn total_depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits as usize];
        let mut depth = 0;
        for g in &self.gates {
            let d = g
                .operands()
                .into_iter()
                .map(|q| level[q.index()])
                .max()
                .unwrap_or(0)
                + 1;
            for q in g.operands() {
                level[q.index()] = d;
            }
            depth = depth.max(d);
        }
        depth
    }

    /// Groups gates into ASAP layers: each gate is placed in the earliest
    /// layer after all gates it depends on. Returns gate indices per layer.
    pub fn asap_layers(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.num_qubits as usize];
        let mut layers: Vec<Vec<usize>> = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            let d = g
                .operands()
                .into_iter()
                .map(|q| level[q.index()])
                .max()
                .unwrap_or(0);
            for q in g.operands() {
                level[q.index()] = d + 1;
            }
            if layers.len() <= d {
                layers.resize_with(d + 1, Vec::new);
            }
            layers[d].push(i);
        }
        layers
    }

    /// Returns the set of qubits touched by at least one gate, sorted.
    pub fn used_qubits(&self) -> Vec<Qubit> {
        let mut used = vec![false; self.num_qubits as usize];
        for g in &self.gates {
            for q in g.operands() {
                used[q.index()] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| Qubit::from(i))
            .collect()
    }

    /// Embeds this circuit into a register of `num_qubits` width by
    /// remapping operands through `f`.
    ///
    /// # Panics
    ///
    /// Panics if any remapped operand is out of range.
    pub fn remapped(&self, num_qubits: u32, mut f: impl FnMut(Qubit) -> Qubit) -> Circuit {
        let mut out = Circuit::with_capacity(num_qubits, self.len());
        for g in &self.gates {
            out.push_unchecked(g.map_qubits(&mut f));
        }
        out
    }
}

/// Builder-style helpers. Each takes raw indices and panics on invalid
/// operands, which keeps test and generator code concise.
impl Circuit {
    /// Appends a Hadamard.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(Gate::H(Qubit::new(q)));
        self
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(Gate::X(Qubit::new(q)));
        self
    }

    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(Gate::Y(Qubit::new(q)));
        self
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(Gate::Z(Qubit::new(q)));
        self
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(Gate::S(Qubit::new(q)));
        self
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(Gate::Sdg(Qubit::new(q)));
        self
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(Gate::T(Qubit::new(q)));
        self
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(Gate::Tdg(Qubit::new(q)));
        self
    }

    /// Appends an Rx rotation.
    pub fn rx(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push_unchecked(Gate::Rx(Qubit::new(q), theta));
        self
    }

    /// Appends an Ry rotation.
    pub fn ry(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push_unchecked(Gate::Ry(Qubit::new(q), theta));
        self
    }

    /// Appends an Rz rotation.
    pub fn rz(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push_unchecked(Gate::Rz(Qubit::new(q), theta));
        self
    }

    /// Appends a CX with `(control, target)`.
    pub fn cx(&mut self, c: u32, t: u32) -> &mut Self {
        self.push_unchecked(Gate::Cx(Qubit::new(c), Qubit::new(t)));
        self
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.push_unchecked(Gate::Cz(Qubit::new(a), Qubit::new(b)));
        self
    }

    /// Appends a ZZ interaction `exp(-i θ/2 Z⊗Z)`.
    pub fn zz(&mut self, a: u32, b: u32, theta: f64) -> &mut Self {
        self.push_unchecked(Gate::Zz(Qubit::new(a), Qubit::new(b), theta));
        self
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.push_unchecked(Gate::Swap(Qubit::new(a), Qubit::new(b)));
        self
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} gates]",
            self.num_qubits,
            self.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_range() {
        let mut c = Circuit::new(2);
        assert!(c.push(Gate::H(Qubit::new(1))).is_ok());
        assert_eq!(
            c.push(Gate::H(Qubit::new(2))),
            Err(CircuitError::QubitOutOfRange {
                qubit: Qubit::new(2),
                num_qubits: 2
            })
        );
    }

    #[test]
    fn push_rejects_duplicate_operands() {
        let mut c = Circuit::new(2);
        assert_eq!(
            c.push(Gate::Cz(Qubit::new(0), Qubit::new(0))),
            Err(CircuitError::DuplicateOperands {
                qubit: Qubit::new(0)
            })
        );
    }

    #[test]
    fn two_qubit_depth_ignores_single_qubit_gates() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        c.cx(0, 1);
        c.h(1);
        c.cx(1, 2);
        assert_eq!(c.two_qubit_depth(), 2);
        assert_eq!(c.total_depth(), 4); // h, cx, h, cx chain on q1
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3);
        assert_eq!(c.two_qubit_depth(), 1);
        c.cz(1, 2);
        assert_eq!(c.two_qubit_depth(), 2);
    }

    #[test]
    fn asap_layers_group_independent_gates() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(2, 3).cx(1, 2);
        let layers = c.asap_layers();
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0], vec![0, 2]); // h q0 and cx q2,q3
        assert_eq!(layers[1], vec![1]);
        assert_eq!(layers[2], vec![3]);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.s(0).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gates()[0], Gate::Cx(Qubit::new(0), Qubit::new(1)));
        assert_eq!(inv.gates()[1], Gate::Sdg(Qubit::new(0)));
    }

    #[test]
    fn counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(2, 0.1).cz(1, 2);
        assert_eq!(c.two_qubit_count(), 2);
        assert_eq!(c.single_qubit_count(), 2);
    }

    #[test]
    fn used_qubits_reports_touched_only() {
        let mut c = Circuit::new(5);
        c.h(0).cz(3, 4);
        assert_eq!(
            c.used_qubits(),
            vec![Qubit::new(0), Qubit::new(3), Qubit::new(4)]
        );
    }

    #[test]
    fn remapped_shifts_register() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let r = c.remapped(4, |q| Qubit::new(q.raw() + 2));
        assert_eq!(r.gates()[0], Gate::Cx(Qubit::new(2), Qubit::new(3)));
    }

    #[test]
    fn from_gates_validates() {
        let gs = vec![
            Gate::H(Qubit::new(0)),
            Gate::Cx(Qubit::new(0), Qubit::new(3)),
        ];
        assert!(Circuit::from_gates(2, gs).is_err());
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = c.to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0, q1"));
    }

    #[test]
    fn empty_circuit_metrics() {
        let c = Circuit::new(4);
        assert!(c.is_empty());
        assert_eq!(c.two_qubit_depth(), 0);
        assert_eq!(c.total_depth(), 0);
        assert!(c.asap_layers().is_empty());
    }
}

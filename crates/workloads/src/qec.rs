//! Quantum-error-correction workloads: surface-code syndrome extraction.
//!
//! The paper's outlook (§6) singles out "circuits involved in quantum error
//! correction protocols" as the next domain for FPQA compilation. This
//! module generates one syndrome-extraction round of the **rotated surface
//! code** of distance `d`: `d²` data qubits on a grid plus `d²−1` stabilizer
//! ancillas (half X-type, half Z-type, interior weight-4 plaquettes and
//! boundary weight-2 half-plaquettes).
//!
//! The emitted circuit uses the textbook schedule: X-stabilizers are
//! Hadamard-framed CNOT fans from the ancilla, Z-stabilizers CNOT fans into
//! the ancilla. Data qubits are indices `0..d²` (reading order); stabilizer
//! ancilla `k` is qubit `d² + k`.

use std::error::Error;
use std::fmt;

use qpilot_circuit::Circuit;

/// A degenerate surface-code parameter was requested.
///
/// Distance 0 has no data qubits and distance 1 has no stabilizers — a
/// "round" of syndrome extraction is meaningless for either, so the
/// constructors reject them instead of emitting an empty circuit (or, as
/// older versions did, panicking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidDistance {
    /// The rejected distance.
    pub distance: usize,
}

impl fmt::Display for InvalidDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "surface-code distance must be at least 2, got {}",
            self.distance
        )
    }
}

impl Error for InvalidDistance {}

/// A stabilizer of the rotated surface code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stabilizer {
    /// `true` for X-type, `false` for Z-type.
    pub is_x: bool,
    /// Data-qubit indices in measurement order (2 or 4 of them).
    pub data: Vec<u32>,
    /// The ancilla qubit measuring this stabilizer.
    pub ancilla: u32,
}

/// The rotated surface code of odd distance `d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceCode {
    distance: usize,
    stabilizers: Vec<Stabilizer>,
}

impl SurfaceCode {
    /// Builds the distance-`d` rotated surface code.
    ///
    /// # Panics
    ///
    /// Panics on degenerate distances (`d < 2`); use [`SurfaceCode::try_new`]
    /// to handle them as an error instead. Distance 2 is allowed for
    /// small-scale testing even though it only detects errors.
    pub fn new(d: usize) -> Self {
        Self::try_new(d).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the distance-`d` rotated surface code, rejecting degenerate
    /// distances (`d < 2`, which have no stabilizers to measure) with an
    /// [`InvalidDistance`] error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistance`] when `d < 2`.
    pub fn try_new(d: usize) -> Result<Self, InvalidDistance> {
        if d < 2 {
            return Err(InvalidDistance { distance: d });
        }
        let n_data = (d * d) as u32;
        let data_at = |r: i64, c: i64| -> u32 { (r as usize * d + c as usize) as u32 };
        let mut stabilizers = Vec::new();
        let mut next_ancilla = n_data;

        // Plaquette (r, c) touches data (r, c), (r, c+1), (r+1, c),
        // (r+1, c+1); X-type iff (r + c) is odd. Boundary half-plaquettes:
        // X on top/bottom rows, Z on left/right columns, alternating.
        for r in -1..(d as i64) {
            for c in -1..(d as i64) {
                let interior = r >= 0 && c >= 0 && r < d as i64 - 1 && c < d as i64 - 1;
                let is_x = (r + c).rem_euclid(2) == 1;
                let present = if interior {
                    true
                } else if r == -1 || r == d as i64 - 1 {
                    // top/bottom: X half-plaquettes only, interior columns.
                    is_x && c >= 0 && c < d as i64 - 1
                } else if c == -1 || c == d as i64 - 1 {
                    // left/right: Z half-plaquettes only, interior rows.
                    !is_x && r >= 0 && r < d as i64 - 1
                } else {
                    false
                };
                if !present {
                    continue;
                }
                let mut data = Vec::with_capacity(4);
                for (dr, dc) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    let (qr, qc) = (r + dr, c + dc);
                    if qr >= 0 && qr < d as i64 && qc >= 0 && qc < d as i64 {
                        data.push(data_at(qr, qc));
                    }
                }
                stabilizers.push(Stabilizer {
                    is_x,
                    data,
                    ancilla: next_ancilla,
                });
                next_ancilla += 1;
            }
        }
        Ok(SurfaceCode {
            distance: d,
            stabilizers,
        })
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Number of data qubits (`d²`).
    pub fn num_data(&self) -> u32 {
        (self.distance * self.distance) as u32
    }

    /// Total qubits including stabilizer ancillas (`2d² − 1`).
    pub fn num_qubits(&self) -> u32 {
        self.num_data() + self.stabilizers.len() as u32
    }

    /// The stabilizers.
    pub fn stabilizers(&self) -> &[Stabilizer] {
        &self.stabilizers
    }

    /// One syndrome-extraction round as a circuit over
    /// [`SurfaceCode::num_qubits`] qubits.
    pub fn syndrome_circuit(&self) -> Circuit {
        self.syndrome_rounds(1)
    }

    /// `rounds` back-to-back syndrome-extraction rounds as one circuit over
    /// [`SurfaceCode::num_qubits`] qubits.
    ///
    /// Each round measures every stabilizer once: X-stabilizers as
    /// Hadamard-framed CNOT fans out of the ancilla, Z-stabilizers as CNOT
    /// fans into the ancilla. `rounds == 0` yields an empty circuit.
    pub fn syndrome_rounds(&self, rounds: usize) -> Circuit {
        let mut c = Circuit::new(self.num_qubits());
        for _ in 0..rounds {
            for s in &self.stabilizers {
                if s.is_x {
                    c.h(s.ancilla);
                    for &q in &s.data {
                        c.cx(s.ancilla, q);
                    }
                    c.h(s.ancilla);
                } else {
                    for &q in &s.data {
                        c.cx(q, s.ancilla);
                    }
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3_has_eight_stabilizers() {
        let code = SurfaceCode::new(3);
        assert_eq!(code.stabilizers().len(), 8);
        assert_eq!(code.num_data(), 9);
        assert_eq!(code.num_qubits(), 17);
        let x_count = code.stabilizers().iter().filter(|s| s.is_x).count();
        assert_eq!(x_count, 4);
    }

    #[test]
    fn stabilizer_count_is_d_squared_minus_one() {
        for d in [2usize, 3, 5, 7] {
            let code = SurfaceCode::new(d);
            assert_eq!(code.stabilizers().len(), d * d - 1, "d = {d}");
        }
    }

    #[test]
    fn interior_stabilizers_have_weight_four() {
        let code = SurfaceCode::new(5);
        for s in code.stabilizers() {
            assert!(s.data.len() == 2 || s.data.len() == 4);
        }
        let weight4 = code
            .stabilizers()
            .iter()
            .filter(|s| s.data.len() == 4)
            .count();
        assert_eq!(weight4, 16); // (d-1)^2 interior plaquettes
    }

    #[test]
    fn data_indices_in_range() {
        let code = SurfaceCode::new(5);
        for s in code.stabilizers() {
            assert!(s.data.iter().all(|&q| q < code.num_data()));
            assert!(s.ancilla >= code.num_data() && s.ancilla < code.num_qubits());
        }
    }

    #[test]
    fn syndrome_circuit_gate_count() {
        let code = SurfaceCode::new(3);
        let c = code.syndrome_circuit();
        let total_weight: usize = code.stabilizers().iter().map(|s| s.data.len()).sum();
        assert_eq!(c.two_qubit_count(), total_weight);
        // 2 Hadamards per X stabilizer.
        assert_eq!(c.single_qubit_count(), 8);
    }

    #[test]
    fn degenerate_distances_are_errors_not_panics() {
        for d in [0usize, 1] {
            let err = SurfaceCode::try_new(d).unwrap_err();
            assert_eq!(err.distance, d);
            assert!(err.to_string().contains("at least 2"), "{err}");
        }
        assert!(SurfaceCode::try_new(2).is_ok());
    }

    #[test]
    fn syndrome_rounds_scale_gate_counts() {
        let code = SurfaceCode::new(3);
        let one = code.syndrome_circuit();
        let three = code.syndrome_rounds(3);
        assert_eq!(three.two_qubit_count(), 3 * one.two_qubit_count());
        assert_eq!(code.syndrome_rounds(0).len(), 0);
    }

    #[test]
    fn stabilizers_commute_pairwise() {
        // X and Z stabilizers must overlap on an even number of qubits.
        let code = SurfaceCode::new(5);
        for (i, a) in code.stabilizers().iter().enumerate() {
            for b in &code.stabilizers()[i + 1..] {
                if a.is_x != b.is_x {
                    let overlap = a.data.iter().filter(|q| b.data.contains(q)).count();
                    assert_eq!(overlap % 2, 0, "anticommuting stabilizers");
                }
            }
        }
    }
}

//! Fig. 14: compiled circuit depth vs SLM/AOD array width for the three
//! workload families at 50 and 100 qubits. A `*` marks the optimal width.
//!
//! Usage: `fig14_width [--sizes 50,100] [--widths 8,16,32,64,128] [--seed 6]`

use qpilot_bench::{arg_list, arg_num, Table};
use qpilot_circuit::Circuit;
use qpilot_core::compile::{compile, Workload};
use qpilot_core::dse::{best_width, sweep_widths, WidthResult};
use qpilot_workloads::graphs::erdos_renyi;
use qpilot_workloads::pauli::{random_pauli_strings, PauliWorkloadConfig};
use qpilot_workloads::random::{random_circuit, RandomCircuitConfig};

fn print_family(name: &str, widths: &[u32], results_per_variant: Vec<(String, Vec<WidthResult>)>) {
    println!("\n-- {name} --");
    let mut header: Vec<String> = vec!["variant".into()];
    header.extend(widths.iter().map(|w| format!("w={w}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for (variant, results) in results_per_variant {
        let best = best_width(&results).map(|r| r.width);
        let mut row = vec![variant];
        for &w in widths {
            match results.iter().find(|r| r.width == w as usize) {
                Some(r) => {
                    let star = if Some(r.width) == best { "*" } else { "" };
                    row.push(format!("{}{star}", r.report.two_qubit_depth));
                }
                None => row.push("-".into()),
            }
        }
        table.row(row);
    }
    table.print();
}

fn main() {
    let sizes = arg_list("--sizes", &[50, 100]);
    let widths = arg_list("--widths", &[8, 16, 32, 64, 128]);
    let seed = arg_num("--seed", 6u64);
    let widths_usize: Vec<usize> = widths.iter().map(|&w| w as usize).collect();

    for &n in &sizes {
        println!("\n== Fig. 14: depth vs array width, {n} qubits ==");

        // Random circuits at 10x / 20x / 50x 2Q gates.
        let mut variants = Vec::new();
        for factor in [10usize, 20, 50] {
            let circuit = random_circuit(&RandomCircuitConfig::paper(n, factor, seed));
            let workload = Workload::circuit(circuit);
            let results = sweep_widths(n, &widths_usize, |cfg| compile(&workload, cfg));
            variants.push((format!("#2Q = {factor}x"), results));
        }
        print_family("random circuits", &widths, variants);

        // Quantum simulation at pauli prob 0.2 / 0.3 / 0.5.
        let mut variants = Vec::new();
        for p in [0.2, 0.3, 0.5] {
            let strings = random_pauli_strings(&PauliWorkloadConfig {
                num_qubits: n as usize,
                num_strings: 100,
                pauli_probability: p,
                seed,
            });
            let workload = Workload::pauli_strings(strings, 0.31);
            let results = sweep_widths(n, &widths_usize, |cfg| compile(&workload, cfg));
            variants.push((format!("pauli p = {p}"), results));
        }
        print_family("quantum simulation", &widths, variants);

        // QAOA at edge prob 0.2 / 0.3 / 0.5.
        let mut variants = Vec::new();
        for p in [0.2, 0.3, 0.5] {
            let graph = erdos_renyi(n, p, seed);
            let workload = Workload::qaoa_cost_layer(n, graph.edges().to_vec(), 0.7);
            let results = sweep_widths(n, &widths_usize, |cfg| compile(&workload, cfg));
            variants.push((format!("edge p = {p}"), results));
        }
        print_family("QAOA", &widths, variants);
    }
    let _ = Circuit::new(1);
    println!("\n(paper: QAOA prefers the widest arrays; random/qsim peak at moderate widths)");
}

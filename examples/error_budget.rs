//! Error budgeting with the Eq. 5 fidelity model: how gate fidelities and
//! movement decoherence combine for a compiled program, and where the
//! crossover against a SWAP-based baseline lies.
//!
//! Run with: `cargo run --example error_budget`

use qpilot::arch::PhysicalParams;
use qpilot::core::compile::{compile, Workload};
use qpilot::core::evaluator::evaluate;
use qpilot::core::FpqaConfig;
use qpilot::workloads::graphs::random_regular;

fn main() {
    let n = 12u32;
    let graph = random_regular(n, 3, 3).expect("3-regular graph");
    let config = FpqaConfig::square_for(n);
    let program = compile(
        &Workload::qaoa_cost_layer(n, graph.edges().to_vec(), 0.7),
        &config,
    )
    .expect("routing");

    println!(
        "QAOA {n}q, {} edges -> {} 2Q gates, depth {}",
        graph.num_edges(),
        program.stats().two_qubit_gates,
        program.stats().two_qubit_depth
    );

    println!("\n2Q fidelity sweep (Eq. 5):");
    println!("  f2        fidelity   error");
    for f2 in [0.9999, 0.999, 0.995, 0.99, 0.95] {
        let cfg = config
            .clone()
            .with_params(config.params().with_fidelity_2q(f2));
        let r = evaluate(program.schedule(), &cfg);
        println!("  {f2:<8}  {:8.4}   {:8.4}", r.fidelity, r.error_rate());
    }

    println!("\ncoherence-time sweep (movement decoherence term):");
    println!("  T2 (s)    fidelity");
    for t2 in [0.1, 0.5, 1.5, 5.0] {
        let params = PhysicalParams {
            t2_s: t2,
            ..*config.params()
        };
        let cfg = config.clone().with_params(params);
        let r = evaluate(program.schedule(), &cfg);
        println!("  {t2:<8}  {:8.4}", r.fidelity);
    }

    let r = evaluate(program.schedule(), &config);
    println!(
        "\ndefault parameters: fidelity {:.4} | movement {:.2} ms of {:.2} ms total",
        r.fidelity,
        r.movement_time_s * 1e3,
        r.total_time_s() * 1e3
    );
}

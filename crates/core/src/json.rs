//! A minimal, dependency-free JSON reader/writer.
//!
//! The workspace has no registry access, so the service wire format and
//! the schedule serde in [`crate::wire`] are hand-rolled on this module
//! (the same way `perf_report` hand-writes its report). The subset is
//! full JSON minus one deliberate restriction: numbers are parsed into
//! `f64`, which is exact for the integers this workspace produces
//! (`u32` ids, counts) and for every float the writers emit.
//!
//! Writing is canonical: [`fmt_f64`] uses Rust's shortest round-trip
//! `Display`, object keys keep insertion order, and no whitespace is
//! emitted. Serialising, parsing and re-serialising any [`Value`] is
//! byte-identical, which the service relies on for cache-hit byte
//! equality checks.

use std::fmt;

/// A parsed JSON value. Objects preserve key order (insertion order when
/// built, source order when parsed).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `u32` if it fits.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|v| u32::try_from(v).ok())
    }

    /// The value as `usize` if it fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises canonically (no whitespace, insertion-ordered keys).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&fmt_f64(*n)),
            Value::Str(s) => write_json_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Canonical float formatting: Rust's shortest round-trip `Display`,
/// which is valid JSON for every finite value.
///
/// # Panics
///
/// Panics on non-finite input — JSON has no representation for it, and no
/// schedule or report in this workspace produces one.
pub fn fmt_f64(v: f64) -> String {
    assert!(v.is_finite(), "cannot serialise non-finite number to JSON");
    format!("{v}")
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` into a standalone quoted JSON string.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_json_str(&mut out, s);
    out
}

/// Error from [`parse`], with a byte offset into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting [`parse`] accepts. The parser recurses per
/// level, and daemon connection handlers feed it untrusted network
/// lines; an unbounded depth would let `[[[[…` overflow the thread
/// stack and abort the whole process. Every document this workspace
/// emits nests a handful of levels.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected; containers may nest at most [`MAX_DEPTH`] deep).
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting deeper than 128 levels"));
    }
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => literal(bytes, pos, "null", Value::Null),
        Some(b't') => literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:`"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, text: &str, value: Value) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(text.as_bytes()) {
        *pos += text.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number chars");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require the paired escape.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos, "unpaired surrogate"));
                            }
                            *pos += 2;
                            let second = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&first) {
                            return Err(err(*pos, "unpaired surrogate"));
                        } else {
                            first
                        };
                        out.push(char::from_u32(code).ok_or_else(|| err(*pos, "bad codepoint"))?);
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(err(*pos, "control character in string")),
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses the 4 hex digits after `\u`; `pos` points at the `u` on entry
/// and at the final digit on exit.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(err(*pos, "truncated \\u escape"));
    }
    let text = std::str::from_utf8(&bytes[start..end]).map_err(|_| err(start, "bad hex"))?;
    let v = u32::from_str_radix(text, 16).map_err(|_| err(start, "bad hex"))?;
    *pos = end - 1;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let src = r#"{"s":"a\"b\\c\nd","n":0.5,"i":12345,"neg":-7,"arr":[true,false,null],"nested":{"x":1e-7}}"#;
        let v = parse(src).unwrap();
        let once = v.to_json();
        let twice = parse(&once).unwrap().to_json();
        assert_eq!(once, twice);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\t newline\n quote\" backslash\\ unicode \u{1F600} ctrl\u{01}";
        let encoded = json_str(original);
        let back = parse(&encoded).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Comfortably deep documents parse…
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep_ok).is_ok());
        // …but adversarial nesting returns an error instead of blowing
        // the connection handler's stack.
        let bomb = "[".repeat(100_000);
        let e = parse(&bomb).unwrap_err();
        assert!(e.message.contains("nesting"));
        let obj_bomb = "{\"a\":".repeat(5_000);
        assert!(parse(&obj_bomb).is_err());
    }

    #[test]
    fn integral_accessors_guard_ranges() {
        assert_eq!(parse("42").unwrap().as_u32(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("4294967296").unwrap().as_u32(), None);
        assert_eq!(parse("4294967296").unwrap().as_u64(), Some(1 << 32));
    }

    #[test]
    fn integers_format_without_fraction() {
        assert_eq!(fmt_f64(100.0), "100");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(Value::Num(3.0).to_json(), "3");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_panics() {
        fmt_f64(f64::NAN);
    }
}

//! Minimal complex arithmetic for the simulator.
//!
//! Implemented in-crate (~100 lines) so the public API carries no external
//! numeric dependencies.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a real number.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication() {
        let z = Complex::new(1.0, 2.0) * Complex::new(3.0, -1.0);
        assert_eq!(z, Complex::new(5.0, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::real(-1.0));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..8 {
            let z = Complex::cis(k as f64 * 0.7);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conjugate_negates_imaginary() {
        assert_eq!(Complex::new(1.0, 2.0).conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn abs_sq_matches_abs() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs_sq() - 25.0).abs() < 1e-12);
        assert!((z.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_signs() {
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1.000000-1.000000i");
    }
}

//! Gate dependency DAG and front-layer extraction.
//!
//! Routers consume circuits layer by layer: at every step they ask for the
//! *front layer* — the set of not-yet-executed gates none of whose
//! predecessors (earlier gates sharing a qubit) are pending. [`Frontier`]
//! maintains that set incrementally in O(1) amortised per executed gate.

use std::fmt;

use crate::{Circuit, Gate};

/// Identifier of a gate inside a [`Circuit`]: its index in program order.
pub type GateId = usize;

/// Static dependency DAG of a circuit.
///
/// Gate `a` precedes gate `b` iff `a` appears earlier in program order and
/// they share at least one qubit *with no intervening gate on that qubit*
/// (the DAG stores the transitive reduction along each qubit's wire).
#[derive(Debug, Clone)]
pub struct DependencyDag {
    preds: Vec<Vec<GateId>>,
    succs: Vec<Vec<GateId>>,
}

impl DependencyDag {
    /// Builds the dependency DAG of `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut last_on: Vec<Option<GateId>> = vec![None; circuit.num_qubits() as usize];
        for (i, g) in circuit.iter().enumerate() {
            for q in g.operands() {
                if let Some(p) = last_on[q.index()] {
                    // A two-qubit gate may meet the same predecessor through
                    // both wires; dedupe.
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_on[q.index()] = Some(i);
            }
        }
        DependencyDag { preds, succs }
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Returns `true` if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Direct predecessors of gate `id`.
    pub fn predecessors(&self, id: GateId) -> &[GateId] {
        &self.preds[id]
    }

    /// Direct successors of gate `id`.
    pub fn successors(&self, id: GateId) -> &[GateId] {
        &self.succs[id]
    }

    /// The source layer: gates with no predecessors.
    pub fn sources(&self) -> Vec<GateId> {
        (0..self.len()).filter(|&i| self.preds[i].is_empty()).collect()
    }

    /// Longest-path depth of each gate (source gates have depth 0).
    ///
    /// Because gate ids are in program order (a topological order), one
    /// forward sweep suffices.
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.len()];
        for i in 0..self.len() {
            for &p in &self.preds[i] {
                depth[i] = depth[i].max(depth[p] + 1);
            }
        }
        depth
    }
}

/// Incremental front-layer tracker over a [`DependencyDag`].
///
/// # Example
///
/// ```
/// use qpilot_circuit::{Circuit, Frontier};
///
/// let mut c = Circuit::new(3);
/// c.cz(0, 1).cz(1, 2).cz(0, 2);
/// let mut fr = Frontier::new(&c);
/// assert_eq!(fr.front_layer(), &[0]);
/// fr.execute(0);
/// assert_eq!(fr.front_layer(), &[1]);
/// ```
#[derive(Debug, Clone)]
pub struct Frontier {
    dag: DependencyDag,
    pending_preds: Vec<usize>,
    executed: Vec<bool>,
    front: Vec<GateId>,
    remaining: usize,
}

impl Frontier {
    /// Builds a frontier over the circuit's dependency DAG.
    pub fn new(circuit: &Circuit) -> Self {
        Self::from_dag(DependencyDag::new(circuit))
    }

    /// Builds a frontier from an existing DAG.
    pub fn from_dag(dag: DependencyDag) -> Self {
        let n = dag.len();
        let pending_preds: Vec<usize> = (0..n).map(|i| dag.predecessors(i).len()).collect();
        let mut front: Vec<GateId> =
            (0..n).filter(|&i| pending_preds[i] == 0).collect();
        front.sort_unstable();
        Frontier {
            dag,
            pending_preds,
            executed: vec![false; n],
            front,
            remaining: n,
        }
    }

    /// The current front layer (gates ready to execute), in program order.
    pub fn front_layer(&self) -> &[GateId] {
        &self.front
    }

    /// Number of gates not yet executed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Returns `true` once every gate has been executed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Returns `true` if `id` has been executed.
    pub fn is_executed(&self, id: GateId) -> bool {
        self.executed[id]
    }

    /// Marks `id` as executed, promoting newly-ready successors into the
    /// front layer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not currently in the front layer (executing a gate
    /// whose dependencies are pending would corrupt the schedule).
    pub fn execute(&mut self, id: GateId) {
        let pos = self
            .front
            .iter()
            .position(|&g| g == id)
            .expect("gate executed out of dependency order");
        self.front.remove(pos);
        self.executed[id] = true;
        self.remaining -= 1;
        let succs: Vec<GateId> = self.dag.successors(id).to_vec();
        for s in succs {
            self.pending_preds[s] -= 1;
            if self.pending_preds[s] == 0 {
                let insert_at = self.front.partition_point(|&g| g < s);
                self.front.insert(insert_at, s);
            }
        }
    }

    /// Executes every gate currently in the front layer, returning them.
    pub fn execute_front(&mut self) -> Vec<GateId> {
        let layer = self.front.clone();
        for &id in &layer {
            self.execute(id);
        }
        layer
    }

    /// Borrow the underlying DAG.
    pub fn dag(&self) -> &DependencyDag {
        &self.dag
    }
}

impl fmt::Display for Frontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frontier[{} remaining, front = {:?}]",
            self.remaining, self.front
        )
    }
}

/// Splits the current front layer of `circuit` into single- and two-qubit
/// gate ids — the shape routers want (1Q gates run on the Raman laser first,
/// 2Q gates are scheduled onto Rydberg stages).
pub fn split_front_layer(circuit: &Circuit, front: &[GateId]) -> (Vec<GateId>, Vec<GateId>) {
    let gates = circuit.gates();
    let mut one_q = Vec::new();
    let mut two_q = Vec::new();
    for &id in front {
        if gates[id].is_two_qubit() {
            two_q.push(id);
        } else {
            one_q.push(id);
        }
    }
    (one_q, two_q)
}

/// Convenience: the gate objects of a layer.
pub fn layer_gates<'c>(circuit: &'c Circuit, layer: &[GateId]) -> Vec<&'c Gate> {
    layer.iter().map(|&id| &circuit.gates()[id]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Circuit {
        let mut c = Circuit::new(3);
        c.cz(0, 1).cz(1, 2).cz(2, 0);
        c
    }

    #[test]
    fn dag_edges_follow_wires() {
        let c = triangle();
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.predecessors(0), &[] as &[GateId]);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1, 0]);
        assert_eq!(dag.successors(0), &[1, 2]);
    }

    #[test]
    fn dag_dedupes_shared_predecessor() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(0, 1);
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn sources_and_depths() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3).cz(1, 2);
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.sources(), vec![0, 1]);
        assert_eq!(dag.depths(), vec![0, 0, 1]);
    }

    #[test]
    fn frontier_walks_triangle() {
        let c = triangle();
        let mut fr = Frontier::new(&c);
        assert_eq!(fr.front_layer(), &[0]);
        fr.execute(0);
        assert_eq!(fr.front_layer(), &[1]);
        fr.execute(1);
        assert_eq!(fr.front_layer(), &[2]);
        fr.execute(2);
        assert!(fr.is_done());
    }

    #[test]
    fn frontier_parallel_layers() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3).cz(1, 2);
        let mut fr = Frontier::new(&c);
        assert_eq!(fr.front_layer(), &[0, 1]);
        let executed = fr.execute_front();
        assert_eq!(executed, vec![0, 1]);
        assert_eq!(fr.front_layer(), &[2]);
    }

    #[test]
    #[should_panic(expected = "out of dependency order")]
    fn frontier_rejects_out_of_order_execution() {
        let c = triangle();
        let mut fr = Frontier::new(&c);
        fr.execute(2);
    }

    #[test]
    fn split_front_layer_partitions() {
        let mut c = Circuit::new(3);
        c.h(0).cz(1, 2);
        let fr = Frontier::new(&c);
        let (one_q, two_q) = split_front_layer(&c, fr.front_layer());
        assert_eq!(one_q, vec![0]);
        assert_eq!(two_q, vec![1]);
    }

    #[test]
    fn frontier_front_stays_sorted() {
        let mut c = Circuit::new(6);
        c.cz(0, 1).cz(0, 2).cz(4, 5).cz(2, 3);
        let mut fr = Frontier::new(&c);
        assert_eq!(fr.front_layer(), &[0, 2]);
        fr.execute(0);
        assert_eq!(fr.front_layer(), &[1, 2]);
        fr.execute(2);
        fr.execute(1);
        assert_eq!(fr.front_layer(), &[3]);
    }

    #[test]
    fn remaining_counts_down() {
        let c = triangle();
        let mut fr = Frontier::new(&c);
        assert_eq!(fr.remaining(), 3);
        fr.execute(0);
        assert_eq!(fr.remaining(), 2);
        assert!(fr.is_executed(0));
        assert!(!fr.is_executed(1));
    }

    #[test]
    fn empty_circuit_frontier_is_done() {
        let c = Circuit::new(2);
        let fr = Frontier::new(&c);
        assert!(fr.is_done());
        assert!(fr.front_layer().is_empty());
    }
}

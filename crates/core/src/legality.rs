//! The order-compatibility (legality) rule of the generic router (Fig. 5).
//!
//! A set of two-qubit gates can share one flying-ancilla stage iff there is
//! an assignment of ancillas to AOD crosses such that, between the creation
//! placement (each ancilla adjacent to its gate's first qubit) and the
//! execution placement (adjacent to the second qubit), **no AOD row or
//! column needs to cross another**. Because AOD rows and columns are
//! ordered independently, the condition decomposes per axis:
//!
//! > for every pair of gates `a`, `b` and each axis, the strict orders of
//! > their first-qubit coordinates and second-qubit coordinates must not be
//! > opposite.
//!
//! Ties are compatible with anything on that axis: two ancillas may hover
//! next to the same SLM row/column at distinct fractional offsets. A short
//! argument shows pairwise compatibility implies a global assignment: every
//! constraint edge weakly increases both the creation and execution
//! coordinates, so the union of constraints is acyclic and any topological
//! order yields valid strictly-increasing AOD coordinates.

use qpilot_arch::GridCoord;

/// Accepted-set size up to which [`LegalitySet`]'s pairwise scan beats
/// its Fenwick index (routing subsets average ~2 gates, so most stages
/// never touch the trees at all).
pub const SCAN_THRESHOLD: usize = 8;

/// The creation/execution footprint of one routed two-qubit gate: the grid
/// coordinates of its first (ancilla-source) and second (target) qubits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatePlacement {
    /// Coordinate of the qubit whose state the ancilla copies.
    pub source: GridCoord,
    /// Coordinate of the qubit the ancilla flies to.
    pub target: GridCoord,
}

impl GatePlacement {
    /// Creates a placement.
    pub fn new(source: GridCoord, target: GridCoord) -> Self {
        GatePlacement { source, target }
    }
}

/// Returns `true` if gates `a` and `b` can share one stage.
pub fn pair_compatible(a: &GatePlacement, b: &GatePlacement) -> bool {
    axis_compatible(
        a.source.row as i64 - b.source.row as i64,
        a.target.row as i64 - b.target.row as i64,
    ) && axis_compatible(
        a.source.col as i64 - b.source.col as i64,
        a.target.col as i64 - b.target.col as i64,
    )
}

#[allow(clippy::nonminimal_bool)] // the symmetric form mirrors the prose rule
fn axis_compatible(d_source: i64, d_target: i64) -> bool {
    !(d_source > 0 && d_target < 0) && !(d_source < 0 && d_target > 0)
}

/// Returns `true` if the whole set is mutually compatible (pairwise check,
/// which is sufficient — see module docs).
pub fn set_compatible(placements: &[GatePlacement]) -> bool {
    for (i, a) in placements.iter().enumerate() {
        for b in &placements[i + 1..] {
            if !pair_compatible(a, b) {
                return false;
            }
        }
    }
    true
}

/// Greedily selects a maximal legal subset of `candidates`, in the paper's
/// order (candidates are pre-sorted by the caller, typically by first-qubit
/// index): each gate is added iff it stays compatible with everything
/// already accepted. Returns the indices of accepted candidates.
pub fn greedy_legal_subset(candidates: &[GatePlacement]) -> Vec<usize> {
    let mut accepted: Vec<usize> = Vec::new();
    for (i, cand) in candidates.iter().enumerate() {
        if accepted
            .iter()
            .all(|&j| pair_compatible(&candidates[j], cand))
        {
            accepted.push(i);
        }
    }
    accepted
}

/// An incremental legality engine: maintains per-axis order state for a
/// growing set of mutually compatible placements so that "is candidate `g`
/// compatible with everything accepted so far?" is answered without any
/// pairwise re-scan.
///
/// # How it works
///
/// The pairwise rule decomposes per axis: candidate `g` conflicts with an
/// accepted placement `s` on an axis iff their source order and target
/// order are *strictly opposite*. Over a whole set that reduces to two
/// aggregate conditions per axis:
///
/// * `max { s.target : s.source < g.source } <= g.target`, and
/// * `min { s.target : s.source > g.source } >= g.target`
///
/// (sources tied with `g` impose nothing). The engine keeps those four
/// aggregates — `(prefix-max, suffix-min)` for rows and columns — in
/// Fenwick trees indexed by the source coordinate, so a query or an
/// insert costs `O(log R)` for an `R × C` SLM grid, independent of how
/// many placements were accepted. A linear single-pass fallback
/// ([`LegalitySet::admits_scan`]) covers callers that prefer not to bound
/// coordinates; both answer identically.
///
/// [`clear`](LegalitySet::clear) is `O(1)` (epoch stamping), so one set
/// can be reused across every stage of a route with zero re-allocation.
///
/// Small sets short-circuit the index: while the accepted set holds at
/// most [`SCAN_THRESHOLD`] members, queries run the `O(k)` pairwise scan
/// (a handful of integer comparisons — cheaper than four Fenwick
/// descents) and the trees are not even maintained; the index is built
/// lazily from the members the first time the set outgrows the
/// threshold. Both paths answer identically (property-tested), so the
/// greedy subset selection is byte-stable across the switch.
///
/// # Example
///
/// ```
/// use qpilot_arch::GridCoord;
/// use qpilot_core::legality::{GatePlacement, LegalitySet};
///
/// let mut set = LegalitySet::new(3, 4);
/// let g0 = GatePlacement::new(GridCoord::new(0, 0), GridCoord::new(0, 2));
/// let g2 = GatePlacement::new(GridCoord::new(1, 2), GridCoord::new(2, 0));
/// assert!(set.try_insert(&g0));
/// assert!(!set.admits(&g2)); // column orders invert
/// ```
#[derive(Debug, Clone)]
pub struct LegalitySet {
    row_left_max: MaxTree,
    row_right_min: MinTree,
    col_left_max: MaxTree,
    col_right_min: MinTree,
    members: Vec<GatePlacement>,
    /// Whether the Fenwick trees currently mirror `members`.
    indexed: bool,
}

impl LegalitySet {
    /// Creates an engine for placements on a grid of `rows × cols`
    /// (coordinates must stay below these bounds).
    pub fn new(rows: usize, cols: usize) -> Self {
        LegalitySet {
            row_left_max: MaxTree::new(rows),
            row_right_min: MinTree::new(rows),
            col_left_max: MaxTree::new(cols),
            col_right_min: MinTree::new(cols),
            members: Vec::new(),
            indexed: false,
        }
    }

    /// Number of accepted placements.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if nothing has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The accepted placements, in insertion order.
    pub fn members(&self) -> &[GatePlacement] {
        &self.members
    }

    /// Empties the set in `O(1)` without releasing memory.
    pub fn clear(&mut self) {
        self.members.clear();
        self.indexed = false;
    }

    /// Compatibility check against the whole accepted set: the `O(k)`
    /// pairwise scan while the set is small, the `O(log grid)` index
    /// beyond [`SCAN_THRESHOLD`] members. Both answer identically.
    #[inline]
    pub fn admits(&self, p: &GatePlacement) -> bool {
        if !self.indexed {
            return self.admits_scan(p);
        }
        self.axis_admits(p.source.row, p.target.row, true)
            && self.axis_admits(p.source.col, p.target.col, false)
    }

    /// Rebuilds the Fenwick index from the members (called once per
    /// stage at most, when the accepted set outgrows the scan
    /// threshold).
    fn build_index(&mut self) {
        self.row_left_max.clear();
        self.row_right_min.clear();
        self.col_left_max.clear();
        self.col_right_min.clear();
        for i in 0..self.members.len() {
            let m = self.members[i];
            self.row_left_max.update(m.source.row, m.target.row);
            self.row_right_min.update(m.source.row, m.target.row);
            self.col_left_max.update(m.source.col, m.target.col);
            self.col_right_min.update(m.source.col, m.target.col);
        }
        self.indexed = true;
    }

    fn axis_admits(&self, source: usize, target: usize, rows: bool) -> bool {
        let (left, right) = if rows {
            (&self.row_left_max, &self.row_right_min)
        } else {
            (&self.col_left_max, &self.col_right_min)
        };
        left.max_below(source).is_none_or(|m| m <= target)
            && right.min_above(source).is_none_or(|m| m >= target)
    }

    /// Single-pass `O(k)` fallback over the accepted members; answers
    /// exactly like [`LegalitySet::admits`] without touching the index.
    #[inline]
    pub fn admits_scan(&self, p: &GatePlacement) -> bool {
        self.members.iter().all(|m| pair_compatible(m, p))
    }

    /// Accepts a placement.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the placement conflicts with the set or
    /// its coordinates exceed the grid bounds.
    #[inline]
    pub fn insert(&mut self, p: &GatePlacement) {
        debug_assert!(self.admits(p), "inserting incompatible placement");
        self.members.push(*p);
        if self.indexed {
            self.row_left_max.update(p.source.row, p.target.row);
            self.row_right_min.update(p.source.row, p.target.row);
            self.col_left_max.update(p.source.col, p.target.col);
            self.col_right_min.update(p.source.col, p.target.col);
        } else if self.members.len() > SCAN_THRESHOLD {
            self.build_index();
        }
    }

    /// Inserts `p` iff it is compatible; returns whether it was accepted.
    #[inline]
    pub fn try_insert(&mut self, p: &GatePlacement) -> bool {
        if self.admits(p) {
            self.insert(p);
            true
        } else {
            false
        }
    }
}

/// Greedily selects a maximal legal subset of `candidates` (the paper's
/// order: the caller pre-sorts) using the incremental engine: `O(n log R)`
/// total instead of the reference's `O(n · k)` pairwise re-scan. At most
/// `cap` gates are accepted. Indices of accepted candidates are appended
/// to `out` (cleared first); `set` is cleared and left holding the chosen
/// subset. Produces exactly the same subset as [`greedy_legal_subset`].
pub fn greedy_max_subset(
    candidates: &[GatePlacement],
    cap: usize,
    set: &mut LegalitySet,
    out: &mut Vec<usize>,
) {
    set.clear();
    out.clear();
    for (i, cand) in candidates.iter().enumerate() {
        if out.len() >= cap {
            break;
        }
        if set.try_insert(cand) {
            out.push(i);
        }
    }
}

/// [`greedy_max_subset`] over an indirection: candidate `i` is
/// `placements[ids[i]]`. Saves the per-stage copy of the front layer's
/// placements into a contiguous scratch buffer (the router keeps one
/// immutable placement per gate for the whole route).
pub fn greedy_max_subset_ids(
    ids: &[usize],
    placements: &[GatePlacement],
    cap: usize,
    set: &mut LegalitySet,
    out: &mut Vec<usize>,
) {
    set.clear();
    out.clear();
    for (i, &id) in ids.iter().enumerate() {
        if out.len() >= cap {
            break;
        }
        if set.try_insert(&placements[id]) {
            out.push(i);
        }
    }
}

/// Fenwick tree answering "max stored value at positions `< i`" with
/// `O(1)` epoch-based clearing.
#[derive(Debug, Clone)]
struct MaxTree {
    vals: Vec<usize>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl MaxTree {
    fn new(size: usize) -> Self {
        MaxTree {
            vals: vec![0; size + 1],
            stamps: vec![0; size + 1],
            // Stamps start at 0, so the first epoch must be non-zero or
            // untouched nodes would read as live.
            epoch: 1,
        }
    }

    fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.epoch = 1;
            self.stamps.fill(0);
            self.vals.fill(0);
        } else {
            self.epoch += 1;
        }
    }

    fn update(&mut self, pos: usize, value: usize) {
        let mut idx = pos + 1;
        debug_assert!(idx < self.vals.len(), "coordinate beyond grid bound");
        while idx < self.vals.len() {
            if self.stamps[idx] != self.epoch {
                self.stamps[idx] = self.epoch;
                self.vals[idx] = value;
            } else {
                self.vals[idx] = self.vals[idx].max(value);
            }
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Max value stored at positions strictly below `pos`.
    fn max_below(&self, pos: usize) -> Option<usize> {
        let mut idx = pos.min(self.vals.len() - 1);
        let mut best: Option<usize> = None;
        while idx > 0 {
            if self.stamps[idx] == self.epoch {
                let v = self.vals[idx];
                best = Some(best.map_or(v, |b: usize| b.max(v)));
            }
            idx -= idx & idx.wrapping_neg();
        }
        best
    }
}

/// Fenwick tree answering "min stored value at positions `> i`": a
/// [`MaxTree`] over mirrored coordinates and negated values.
#[derive(Debug, Clone)]
struct MinTree {
    vals: Vec<usize>,
    stamps: Vec<u32>,
    epoch: u32,
    size: usize,
}

impl MinTree {
    fn new(size: usize) -> Self {
        MinTree {
            vals: vec![0; size + 1],
            stamps: vec![0; size + 1],
            epoch: 1,
            size,
        }
    }

    fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.epoch = 1;
            self.stamps.fill(0);
            self.vals.fill(0);
        } else {
            self.epoch += 1;
        }
    }

    fn update(&mut self, pos: usize, value: usize) {
        debug_assert!(pos < self.size, "coordinate beyond grid bound");
        let mut idx = self.size - pos; // mirror: larger pos -> smaller index
        while idx < self.vals.len() {
            if self.stamps[idx] != self.epoch {
                self.stamps[idx] = self.epoch;
                self.vals[idx] = value;
            } else {
                self.vals[idx] = self.vals[idx].min(value);
            }
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Min value stored at positions strictly above `pos`.
    fn min_above(&self, pos: usize) -> Option<usize> {
        if pos + 1 >= self.size {
            return None;
        }
        let mut idx = self.size - pos - 1;
        let mut best: Option<usize> = None;
        while idx > 0 {
            if self.stamps[idx] == self.epoch {
                let v = self.vals[idx];
                best = Some(best.map_or(v, |b: usize| b.min(v)));
            }
            idx -= idx & idx.wrapping_neg();
        }
        best
    }
}

/// An incremental single-axis pair matcher: maintains `(home, target)`
/// pairs strictly increasing in both coordinates, with the QAOA routers'
/// *gap capacity* rule — between two active neighbours there must be at
/// least as many free target midpoint slots as parked home lines. This is
/// the per-axis order machinery of [`LegalitySet`] specialised to the
/// stage matching of Alg. 3, shared with `qpilot_core::qaoa`.
#[derive(Debug, Clone, Default)]
pub struct PairMatcher {
    active: Vec<(usize, usize)>,
}

impl PairMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        PairMatcher::default()
    }

    /// The accepted pairs, strictly increasing in both coordinates.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.active
    }

    /// Number of accepted pairs.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Returns `true` if no pair has been accepted.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Drops all pairs, keeping capacity.
    pub fn clear(&mut self) {
        self.active.clear();
    }

    /// Non-mutating feasibility check mirroring [`PairMatcher::insert`].
    pub fn can_insert(&self, home: usize, target: usize) -> bool {
        self.check(home, target).is_some()
    }

    /// Tries to insert a pair keeping both orders strict and leaving
    /// enough midpoint slots for the parked lines in between; returns
    /// whether it was accepted.
    pub fn insert(&mut self, home: usize, target: usize) -> bool {
        match self.check(home, target) {
            Some(pos) => {
                self.active.insert(pos, (home, target));
                true
            }
            None => false,
        }
    }

    /// Returns the insertion position iff `(home, target)` fits.
    fn check(&self, home: usize, target: usize) -> Option<usize> {
        if self.active.iter().any(|&(h, t)| h == home || t == target) {
            return None;
        }
        let pos = self.active.partition_point(|&(h, _)| h < home);
        if pos > 0 {
            let (lh, lt) = self.active[pos - 1];
            if target <= lt || home - lh - 1 > target - lt {
                return None;
            }
        }
        if pos < self.active.len() {
            let (rh, rt) = self.active[pos];
            if target >= rt || rh - home - 1 > rt - target {
                return None;
            }
        }
        Some(pos)
    }
}

/// Ranks of each accepted gate's ancilla along one axis: a permutation
/// placing ancillas in strictly increasing AOD coordinates consistent with
/// both the source and target weak orders.
///
/// Gates are ranked by `(source_coord, target_coord)` lexicographically,
/// which is a valid linear extension for a compatible set.
pub fn axis_ranks(placements: &[GatePlacement], rows: bool) -> Vec<usize> {
    let mut order: Vec<usize> = Vec::new();
    let mut rank: Vec<usize> = Vec::new();
    axis_ranks_into(placements, rows, &mut order, &mut rank);
    rank
}

/// Allocation-free variant of [`axis_ranks`]: writes the ranks into `rank`
/// using `order` as a scratch permutation buffer (both are cleared first).
pub fn axis_ranks_into(
    placements: &[GatePlacement],
    rows: bool,
    order: &mut Vec<usize>,
    rank: &mut Vec<usize>,
) {
    let key = |p: &GatePlacement| -> (usize, usize) {
        if rows {
            (p.source.row, p.target.row)
        } else {
            (p.source.col, p.target.col)
        }
    };
    rank.clear();
    // Routing subsets average ~2 gates: rank one or two placements
    // directly instead of running the sort machinery.
    match placements {
        [] => return,
        [_] => {
            rank.push(0);
            return;
        }
        [a, b] => {
            let first_is_a = (key(a), 0usize) < (key(b), 1usize);
            rank.push(usize::from(!first_is_a));
            rank.push(usize::from(first_is_a));
            return;
        }
        _ => {}
    }
    order.clear();
    order.extend(0..placements.len());
    order.sort_by_key(|&i| (key(&placements[i]), i));
    rank.resize(placements.len(), 0);
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(sr: usize, sc: usize, tr: usize, tc: usize) -> GatePlacement {
        GatePlacement::new(GridCoord::new(sr, sc), GridCoord::new(tr, tc))
    }

    /// The paper's Fig. 5 example: gates g0..g3 on a 3x4 grid.
    /// g0 = (q0 -> q2): (0,0) -> (0,2); g1 = (q5 -> q10): (1,1) -> (2,2);
    /// g2 = (q6 -> q8): (1,2) -> (2,0); g3 = (q9 -> q11): (2,1) -> (2,3).
    fn fig5() -> Vec<GatePlacement> {
        vec![p(0, 0, 0, 2), p(1, 1, 2, 2), p(1, 2, 2, 0), p(2, 1, 2, 3)]
    }

    #[test]
    fn fig5_g0_g1_compatible() {
        let g = fig5();
        assert!(pair_compatible(&g[0], &g[1]));
    }

    #[test]
    fn fig5_g2_conflicts() {
        let g = fig5();
        // Column order: sources g0(0) <= g1(1) <= g2(2) but targets
        // g2(0) <= g0(2) <= g1(2): inversion against both.
        assert!(!pair_compatible(&g[0], &g[2]));
        assert!(!pair_compatible(&g[1], &g[2]));
    }

    #[test]
    fn fig5_greedy_selects_g0_g1_g3() {
        let g = fig5();
        assert_eq!(greedy_legal_subset(&g), vec![0, 1, 3]);
    }

    #[test]
    fn ties_are_compatible_when_targets_agree() {
        // Same source row, targets in the same row: fine.
        let a = p(0, 0, 1, 0);
        let b = p(0, 1, 1, 1);
        assert!(pair_compatible(&a, &b));
    }

    #[test]
    fn tie_with_strict_target_order_is_fine() {
        // Sources tie on rows; execution imposes the order.
        let a = p(0, 0, 2, 0);
        let b = p(0, 1, 1, 1);
        assert!(pair_compatible(&a, &b));
    }

    #[test]
    fn strict_inversion_is_illegal() {
        let a = p(0, 0, 1, 1);
        let b = p(1, 1, 0, 0); // rows: a above b at creation, below at exec
        assert!(!pair_compatible(&a, &b));
    }

    #[test]
    fn column_inversion_is_illegal() {
        let a = p(0, 0, 0, 3);
        let b = p(0, 1, 0, 2); // cols: a left of b at creation, right at exec
        assert!(!pair_compatible(&a, &b));
    }

    #[test]
    fn set_compatible_matches_pairwise() {
        let g = fig5();
        assert!(set_compatible(&[g[0], g[1], g[3]]));
        assert!(!set_compatible(&g));
    }

    #[test]
    fn greedy_takes_first_when_all_conflict() {
        let a = p(0, 0, 1, 1);
        let b = p(1, 1, 0, 0);
        assert_eq!(greedy_legal_subset(&[a, b]), vec![0]);
    }

    #[test]
    fn axis_ranks_respect_both_orders() {
        let g = vec![p(0, 0, 0, 2), p(1, 1, 2, 2), p(2, 1, 2, 3)];
        let rows = axis_ranks(&g, true);
        assert_eq!(rows, vec![0, 1, 2]);
        let cols = axis_ranks(&g, false);
        // source cols: 0, 1, 1; target cols: 2, 2, 3 -> order g0, g1, g2.
        assert_eq!(cols, vec![0, 1, 2]);
    }

    #[test]
    fn axis_ranks_break_source_ties_by_target() {
        let g = vec![p(0, 0, 2, 0), p(0, 0, 1, 0)];
        let rows = axis_ranks(&g, true);
        assert_eq!(rows, vec![1, 0]); // second gate executes higher
    }

    #[test]
    fn empty_set_is_compatible() {
        assert!(set_compatible(&[]));
        assert!(greedy_legal_subset(&[]).is_empty());
    }

    #[test]
    fn legality_set_matches_pairwise_on_fig5() {
        let g = fig5();
        let mut set = LegalitySet::new(3, 4);
        assert!(set.try_insert(&g[0]));
        assert!(set.try_insert(&g[1]));
        assert!(!set.admits(&g[2]));
        assert!(!set.admits_scan(&g[2]));
        assert!(set.try_insert(&g[3]));
        assert_eq!(set.len(), 3);
        set.clear();
        assert!(set.is_empty());
        assert!(set.try_insert(&g[2]));
    }

    #[test]
    fn greedy_max_subset_replicates_reference_on_fig5() {
        let g = fig5();
        let mut set = LegalitySet::new(3, 4);
        let mut out = Vec::new();
        greedy_max_subset(&g, usize::MAX, &mut set, &mut out);
        assert_eq!(out, greedy_legal_subset(&g));
    }

    #[test]
    fn greedy_max_subset_respects_cap() {
        let g = vec![p(0, 0, 0, 1), p(1, 0, 1, 1), p(2, 0, 2, 1)];
        let mut set = LegalitySet::new(3, 2);
        let mut out = Vec::new();
        greedy_max_subset(&g, 2, &mut set, &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn ties_on_one_axis_admit_anything_there() {
        let mut set = LegalitySet::new(4, 4);
        set.insert(&p(1, 0, 1, 1));
        // Same source row, wildly different target row: rows tie -> legal;
        // columns must still agree.
        assert!(set.admits(&p(1, 2, 3, 3)));
        assert!(!set.admits(&p(1, 2, 3, 0)));
    }

    /// Differential test: thousands of random placement sets, indexed
    /// engine vs the reference pairwise greedy. Subset sizes must match
    /// exactly (in particular: never regress).
    #[test]
    fn legality_set_agrees_with_reference_on_random_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut prng = StdRng::seed_from_u64(0x3C6E_F372_FE94_F82A);
        let mut rng = move || prng.gen_range(0..usize::MAX);
        let mut set = LegalitySet::new(8, 8);
        let mut out = Vec::new();
        for round in 0..4000 {
            let (rows, cols) = (1 + rng() % 8, 1 + rng() % 8);
            let k = 1 + rng() % 14;
            let placements: Vec<GatePlacement> = (0..k)
                .map(|_| p(rng() % rows, rng() % cols, rng() % rows, rng() % cols))
                .collect();
            let reference = greedy_legal_subset(&placements);
            greedy_max_subset(&placements, usize::MAX, &mut set, &mut out);
            assert_eq!(out, reference, "round {round}: {placements:?}");
            assert!(out.len() >= reference.len(), "subset size regressed");
            // Every admitted placement agrees between fast and scan paths.
            set.clear();
            for q in &placements {
                assert_eq!(set.admits(q), set.admits_scan(q), "round {round}");
                set.try_insert(q);
            }
        }
    }

    #[test]
    fn pair_matcher_mirrors_insert_rules() {
        let mut m = PairMatcher::new();
        assert!(m.insert(1, 2));
        // Left of (1 -> 2): home 0, target must be < 2.
        assert!(m.insert(0, 0));
        assert_eq!(m.pairs(), &[(0, 0), (1, 2)]);
        // Inversion rejected.
        assert!(!m.insert(2, 1));
        // Append right.
        assert!(m.insert(3, 3));
        assert_eq!(m.len(), 3);
        // Gap capacity: home 3 from (0,0) with target 1 offers too few
        // midpoint slots.
        m.clear();
        assert!(m.insert(0, 0));
        assert!(!m.can_insert(3, 1));
        assert!(!m.insert(3, 1));
        assert!(m.insert(3, 3));
    }
}

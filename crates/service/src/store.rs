//! The persistent schedule store behind `qpilotd --store <dir>`.
//!
//! The cache already holds the *canonical* `qpilot.schedule/v1` JSON, so
//! persistence is a byte-for-byte spill: each entry becomes one blob file
//! named by its request fingerprint (`<32 hex>.schedule.json`) whose
//! content is exactly the cached `Arc<str>`. A small index file
//! (`index.json`, schema `qpilot.store.index/v1`) records the entries in
//! least→most recently inserted order plus the metadata the blob cannot
//! carry (original compile seconds).
//!
//! Index maintenance is **incremental**: each insert/remove appends one
//! line to a sidecar journal (`index.journal`) instead of rewriting the
//! whole index, and once the journal passes a line threshold it is
//! compacted — snapshot rewritten, journal truncated — off the write
//! path (the worker that crossed the threshold spawns the compaction on
//! a background thread via [`ScheduleStore::try_begin_compaction`]).
//! Recovery reads the last snapshot and replays the journal over it; a
//! torn final journal line (the crash shape) is skipped harmlessly.
//!
//! The store can also be **size-bounded** ([`StoreOptions::max_bytes`],
//! `qpilotd --store-max-bytes`): on insert, the oldest blobs are evicted
//! until the total tracked bytes fit the budget. This bound is
//! independent of the in-memory LRU capacity — the cache answers "what
//! is hot", the byte budget answers "what fits on this disk".
//!
//! Crash safety is rename-based: blobs and the index are written to a
//! `.tmp` sibling and atomically renamed into place, so a `SIGKILL`
//! mid-write leaves either the old bytes, the new bytes, or a stray
//! `.tmp` file — never a half-visible blob. Recovery ([`ScheduleStore::open`])
//! is correspondingly tolerant:
//!
//! * stray `*.tmp` files are deleted;
//! * blobs are re-parsed with [`schedule_from_json`] before being trusted
//!   — a corrupt or truncated blob is deleted and skipped, never fatal;
//! * blobs on disk but missing from the index (a kill between blob rename
//!   and index rewrite) are adopted with an unknown compile time;
//! * index entries whose blob vanished are dropped.
//!
//! Schedule statistics are recomputed from the parsed schedule during
//! recovery, so the blob alone is sufficient to rebuild a full
//! [`CacheEntry`].

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qpilot_circuit::Fingerprint;
use qpilot_core::json::{self, json_str, Value};
use qpilot_core::wire::schedule_from_json;
use qpilot_core::ScheduleStats;

use crate::cache::CacheEntry;
use crate::faults::Faults;

/// Schema tag of the store index document.
pub const STORE_INDEX_FORMAT: &str = "qpilot.store.index/v1";

/// File-name suffix of schedule blobs.
const BLOB_SUFFIX: &str = ".schedule.json";

/// Sidecar journal of index mutations since the last snapshot.
const JOURNAL_NAME: &str = "index.journal";

/// Tuning and dependencies for [`ScheduleStore::open_with`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Evict oldest blobs on insert once tracked bytes exceed this
    /// budget (`None` = unbounded).
    pub max_bytes: Option<u64>,
    /// Journal lines that trigger a compaction.
    pub journal_threshold: u64,
    /// Armed fault-injection sites (disarmed by default).
    pub faults: Arc<Faults>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            max_bytes: None,
            journal_threshold: 512,
            faults: Arc::new(Faults::default()),
        }
    }
}

/// One recovered entry, in index (recency) order.
#[derive(Debug)]
pub struct RecoveredEntry {
    /// The request fingerprint (blob name).
    pub fingerprint: Fingerprint,
    /// The rebuilt cache entry; `schedule_json` is the blob's exact bytes.
    pub entry: Arc<CacheEntry>,
}

/// Counters describing one [`ScheduleStore::open`] recovery pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Blobs successfully recovered.
    pub loaded: u64,
    /// Corrupt/truncated blobs (and stray `.tmp` files) removed.
    pub discarded: u64,
    /// Blobs adopted from disk despite a missing/corrupt index entry.
    pub adopted: u64,
}

/// A fingerprint-addressed on-disk mirror of the schedule cache.
#[derive(Debug)]
pub struct ScheduleStore {
    dir: PathBuf,
    options: StoreOptions,
    /// `fingerprint → compile_s`, in insertion (recency) order maintained
    /// by a monotonic sequence number so the index file preserves LRU
    /// order across restarts.
    index: Mutex<IndexState>,
    persisted: AtomicU64,
    removed: AtomicU64,
    size_evicted: AtomicU64,
    compactions: AtomicU64,
    /// Guards against concurrent background compactions; see
    /// [`ScheduleStore::try_begin_compaction`].
    compacting: AtomicBool,
    recovery: RecoveryReport,
}

#[derive(Debug, Default)]
struct IndexState {
    entries: HashMap<Fingerprint, IndexEntry>,
    next_seq: u64,
    /// Sum of tracked blob sizes (the size-bound accounting).
    total_bytes: u64,
    /// Journal lines appended since the last snapshot.
    journal_lines: u64,
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    compile_s: f64,
    seq: u64,
    bytes: u64,
}

/// One replayed journal mutation.
enum JournalOp {
    Insert(Fingerprint, f64),
    Remove(Fingerprint),
}

impl ScheduleStore {
    /// Opens (creating if needed) the store directory and runs recovery.
    /// The recovered entries are returned oldest-first so replaying them
    /// into an LRU cache reproduces the pre-restart recency order.
    ///
    /// # Errors
    ///
    /// Only directory creation/listing failures are errors; damaged
    /// content is repaired (deleted or adopted) and reported via
    /// [`ScheduleStore::recovery`].
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<(ScheduleStore, Vec<RecoveredEntry>)> {
        ScheduleStore::open_with(dir, StoreOptions::default())
    }

    /// [`ScheduleStore::open`] with explicit size budget, journal
    /// threshold, and fault sites.
    ///
    /// # Errors
    ///
    /// See [`ScheduleStore::open`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> std::io::Result<(ScheduleStore, Vec<RecoveredEntry>)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut report = RecoveryReport::default();

        // The last snapshot gives recency order and compile times; the
        // journal replays the mutations since. Absence or damage of
        // either degrades to a plain directory scan.
        let mut indexed = read_index(&dir.join("index.json"));
        for op in read_journal(&dir.join(JOURNAL_NAME)) {
            match op {
                JournalOp::Insert(fp, compile_s) => {
                    // Re-insert moves the row to the back (most recent).
                    indexed.retain(|(i, _)| *i != fp);
                    indexed.push((fp, compile_s));
                }
                JournalOp::Remove(fp) => indexed.retain(|(i, _)| *i != fp),
            }
        }

        // Every on-disk candidate, keyed by fingerprint.
        let mut on_disk: HashMap<Fingerprint, PathBuf> = HashMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                // A write the crash interrupted before its rename.
                let _ = std::fs::remove_file(&path);
                report.discarded += 1;
                continue;
            }
            if let Some(hex) = name.strip_suffix(BLOB_SUFFIX) {
                match hex.parse::<Fingerprint>() {
                    Ok(fp) => {
                        on_disk.insert(fp, path);
                    }
                    Err(_) => {
                        // Not one of ours; leave it alone.
                    }
                }
            }
        }

        // Load order: indexed entries first (oldest→newest), then adopted
        // strays sorted by fingerprint for determinism.
        let mut order: Vec<(Fingerprint, f64, bool)> = Vec::new();
        for (fp, compile_s) in &indexed {
            if on_disk.contains_key(fp) {
                order.push((*fp, *compile_s, false));
            }
        }
        let mut strays: Vec<Fingerprint> = on_disk
            .keys()
            .filter(|fp| !indexed.iter().any(|(i, _)| i == *fp))
            .copied()
            .collect();
        strays.sort_by_key(|fp| fp.0);
        for fp in strays {
            order.push((fp, 0.0, true));
        }

        let mut recovered = Vec::new();
        let mut state = IndexState::default();
        for (fp, compile_s, adopted) in order {
            let path = &on_disk[&fp];
            match load_blob(path) {
                Some((entry_body, stats)) => {
                    report.loaded += 1;
                    if adopted {
                        report.adopted += 1;
                    }
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    let bytes = entry_body.len() as u64;
                    state.total_bytes += bytes;
                    state.entries.insert(
                        fp,
                        IndexEntry {
                            compile_s,
                            seq,
                            bytes,
                        },
                    );
                    recovered.push(RecoveredEntry {
                        fingerprint: fp,
                        entry: Arc::new(CacheEntry {
                            schedule_json: entry_body,
                            stats,
                            compile_s,
                        }),
                    });
                }
                None => {
                    // Truncated/corrupt blob: a cache can always recompile.
                    let _ = std::fs::remove_file(path);
                    report.discarded += 1;
                }
            }
        }

        let store = ScheduleStore {
            dir,
            options,
            index: Mutex::new(state),
            persisted: AtomicU64::new(0),
            removed: AtomicU64::new(0),
            size_evicted: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compacting: AtomicBool::new(false),
            recovery: report,
        };
        // Recovery is itself a compaction: snapshot what survived, start
        // with an empty journal.
        store.compact_now();
        Ok((store, recovered))
    }

    /// What the opening recovery pass found.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Blobs currently tracked by the index (recovered + persisted −
    /// removed); failed writes are never indexed, so this is the true
    /// on-disk mirror size, unlike the in-memory cache length.
    pub fn len(&self) -> u64 {
        self.index.lock().expect("store index lock").entries.len() as u64
    }

    /// Returns `true` when the index tracks no blobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blobs written since opening.
    pub fn persisted(&self) -> u64 {
        self.persisted.load(Ordering::Relaxed)
    }

    /// Blobs deleted on cache eviction since opening.
    pub fn removed(&self) -> u64 {
        self.removed.load(Ordering::Relaxed)
    }

    /// Blobs evicted by the byte budget since opening.
    pub fn size_evicted(&self) -> u64 {
        self.size_evicted.load(Ordering::Relaxed)
    }

    /// Index snapshots written since opening (recovery writes one).
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Total bytes of tracked blobs.
    pub fn bytes(&self) -> u64 {
        self.index.lock().expect("store index lock").total_bytes
    }

    /// Journal lines appended since the last snapshot.
    pub fn journal_lines(&self) -> u64 {
        self.index.lock().expect("store index lock").journal_lines
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn blob_path(&self, fingerprint: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{fingerprint}{BLOB_SUFFIX}"))
    }

    /// Spills one cache entry: atomic blob write, then a one-line journal
    /// append (the whole index is *not* rewritten — see the [module
    /// docs](self)). When a byte budget is configured, the oldest blobs
    /// are evicted until the insert fits. Failures are reported to stderr
    /// and swallowed — persistence is an availability feature, never a
    /// reason to fail a compile.
    pub fn persist(&self, fingerprint: Fingerprint, entry: &CacheEntry) {
        self.options.faults.store_write_delay();
        let path = self.blob_path(&fingerprint);
        if self.options.faults.store_write_fail() {
            eprintln!(
                "qpilot-service: store write {} failed: injected fault",
                path.display()
            );
            return;
        }
        if let Err(e) = write_atomic(&path, entry.schedule_json.as_bytes()) {
            eprintln!("qpilot-service: store write {} failed: {e}", path.display());
            return;
        }
        let mut evicted: Vec<Fingerprint> = Vec::new();
        {
            let mut index = self.index.lock().expect("store index lock");
            let seq = index.next_seq;
            index.next_seq += 1;
            let bytes = entry.schedule_json.len() as u64;
            if let Some(old) = index.entries.insert(
                fingerprint,
                IndexEntry {
                    compile_s: entry.compile_s,
                    seq,
                    bytes,
                },
            ) {
                index.total_bytes -= old.bytes;
            }
            index.total_bytes += bytes;
            self.append_journal(
                &mut index,
                &journal_insert_line(&fingerprint, entry.compile_s),
            );
            if let Some(max) = self.options.max_bytes {
                // Oldest-first eviction; the just-inserted row (highest
                // seq) is only ever the last candidate and is kept.
                while index.total_bytes > max && index.entries.len() > 1 {
                    let victim = index
                        .entries
                        .iter()
                        .min_by_key(|(_, e)| e.seq)
                        .map(|(fp, _)| *fp)
                        .expect("non-empty index");
                    if victim == fingerprint {
                        break;
                    }
                    let old = index.entries.remove(&victim).expect("victim exists");
                    index.total_bytes -= old.bytes;
                    self.append_journal(&mut index, &journal_remove_line(&victim));
                    evicted.push(victim);
                }
            }
        }
        self.persisted.fetch_add(1, Ordering::Relaxed);
        for victim in evicted {
            let _ = std::fs::remove_file(self.blob_path(&victim));
            self.size_evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops an evicted entry's blob and index row (journal append, no
    /// index rewrite).
    pub fn remove(&self, fingerprint: &Fingerprint) {
        let _ = std::fs::remove_file(self.blob_path(fingerprint));
        let mut index = self.index.lock().expect("store index lock");
        if let Some(old) = index.entries.remove(fingerprint) {
            index.total_bytes -= old.bytes;
            self.removed.fetch_add(1, Ordering::Relaxed);
            self.append_journal(&mut index, &journal_remove_line(fingerprint));
        }
    }

    /// Claims the right to run one compaction if the journal has crossed
    /// its threshold. The caller that gets `true` must follow up with
    /// [`ScheduleStore::compact_now`] (typically on a background thread —
    /// this is how the write path keeps compaction off its latency).
    pub fn try_begin_compaction(&self) -> bool {
        if self.index.lock().expect("store index lock").journal_lines
            < self.options.journal_threshold
        {
            return false;
        }
        !self.compacting.swap(true, Ordering::AcqRel)
    }

    /// Compacts synchronously: snapshots the index to `index.json` and
    /// truncates the journal. Used by recovery, drain, and the background
    /// thread armed by [`ScheduleStore::try_begin_compaction`].
    pub fn compact_now(&self) {
        {
            let mut index = self.index.lock().expect("store index lock");
            self.write_index_file(&index);
            if let Err(e) = std::fs::write(self.dir.join(JOURNAL_NAME), b"") {
                eprintln!("qpilot-service: journal truncate failed: {e}");
            }
            index.journal_lines = 0;
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.compacting.store(false, Ordering::Release);
    }

    /// Appends one mutation line to the journal while the caller holds
    /// the index lock (which serialises appends).
    fn append_journal(&self, index: &mut IndexState, line: &str) {
        let path = self.dir.join(JOURNAL_NAME);
        let result = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        match result {
            Ok(()) => index.journal_lines += 1,
            Err(e) => eprintln!("qpilot-service: journal append failed: {e}"),
        }
    }

    /// Writes the index file while the caller holds the index lock: the
    /// lock covers build **and** tmp+rename, so concurrent workers can
    /// neither interleave writes to the shared tmp path nor publish a
    /// stale snapshot over a newer one.
    fn write_index_file(&self, index: &IndexState) {
        let mut rows: Vec<(&Fingerprint, &IndexEntry)> = index.entries.iter().collect();
        rows.sort_by_key(|(_, e)| e.seq);
        let mut out = String::with_capacity(64 + rows.len() * 64);
        out.push_str("{\"format\":");
        out.push_str(&json_str(STORE_INDEX_FORMAT));
        out.push_str(",\"entries\":[");
        for (i, (fp, e)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"fingerprint\":\"");
            out.push_str(&fp.to_string());
            out.push_str("\",\"compile_s\":");
            out.push_str(&json::fmt_f64(e.compile_s));
            out.push('}');
        }
        out.push_str("]}\n");
        let path = self.dir.join("index.json");
        if let Err(e) = write_atomic(&path, out.as_bytes()) {
            eprintln!("qpilot-service: index write {} failed: {e}", path.display());
        }
    }
}

/// tmp-and-rename write: readers only ever observe complete files.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Reads the index rows `(fingerprint, compile_s)` in file order; any
/// damage yields an empty list (recovery then adopts blobs by scan).
fn read_index(path: &Path) -> Vec<(Fingerprint, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = json::parse(&text) else {
        return Vec::new();
    };
    if doc.get("format").and_then(Value::as_str) != Some(STORE_INDEX_FORMAT) {
        return Vec::new();
    }
    let mut rows = Vec::new();
    for entry in doc.get("entries").and_then(Value::as_arr).unwrap_or(&[]) {
        let Some(fp) = entry
            .get("fingerprint")
            .and_then(Value::as_str)
            .and_then(|s| s.parse::<Fingerprint>().ok())
        else {
            continue;
        };
        let compile_s = entry
            .get("compile_s")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        rows.push((fp, compile_s));
    }
    rows
}

fn journal_insert_line(fingerprint: &Fingerprint, compile_s: f64) -> String {
    format!(
        "{{\"op\":\"insert\",\"fingerprint\":\"{fingerprint}\",\"compile_s\":{}}}\n",
        json::fmt_f64(compile_s)
    )
}

fn journal_remove_line(fingerprint: &Fingerprint) -> String {
    format!("{{\"op\":\"remove\",\"fingerprint\":\"{fingerprint}\"}}\n")
}

/// Replays the journal in append order. Unparsable lines — in practice
/// only a torn final line from a crash mid-append — are skipped, as is a
/// missing journal.
fn read_journal(path: &Path) -> Vec<JournalOp> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut ops = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(doc) = json::parse(line) else { continue };
        let Some(fp) = doc
            .get("fingerprint")
            .and_then(Value::as_str)
            .and_then(|s| s.parse::<Fingerprint>().ok())
        else {
            continue;
        };
        match doc.get("op").and_then(Value::as_str) {
            Some("insert") => {
                let compile_s = doc.get("compile_s").and_then(Value::as_f64).unwrap_or(0.0);
                ops.push(JournalOp::Insert(fp, compile_s));
            }
            Some("remove") => ops.push(JournalOp::Remove(fp)),
            _ => {}
        }
    }
    ops
}

/// Reads a blob and verifies it parses as a schedule; `None` on any
/// damage. Returns the exact bytes plus the stats recomputed from the
/// one validating parse (the blob is the only durable artefact; stats
/// are derivable).
fn load_blob(path: &Path) -> Option<(Arc<str>, ScheduleStats)> {
    let text = std::fs::read_to_string(path).ok()?;
    let schedule = schedule_from_json(&text).ok()?;
    Some((text.into(), schedule.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpilot_circuit::Circuit;
    use qpilot_core::wire::schedule_to_json;
    use qpilot_core::{FpqaConfig, Workload};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qpilot_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_entry(seed: u32) -> (Fingerprint, CacheEntry) {
        let mut c = Circuit::new(4);
        c.h(seed % 4);
        c.cz(0, 1).cz(2, 3);
        let program =
            qpilot_core::compile(&Workload::circuit(c), &FpqaConfig::square_for(4)).unwrap();
        let json: Arc<str> = schedule_to_json(program.schedule()).into();
        let mut key = [0u8; 16];
        key[0] = seed as u8;
        (
            Fingerprint(key),
            CacheEntry {
                schedule_json: json,
                stats: *program.stats(),
                compile_s: 0.002,
            },
        )
    }

    #[test]
    fn persist_then_reopen_recovers_bytes_stats_and_order() {
        let dir = temp_dir("roundtrip");
        let (store, empty) = ScheduleStore::open(&dir).unwrap();
        assert!(empty.is_empty());
        let (fp1, e1) = sample_entry(1);
        let (fp2, e2) = sample_entry(2);
        store.persist(fp1, &e1);
        store.persist(fp2, &e2);
        drop(store);

        let (store, recovered) = ScheduleStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(store.recovery().loaded, 2);
        assert_eq!(store.recovery().discarded, 0);
        // Oldest first, bytes exact, stats recomputed, compile_s kept.
        assert_eq!(recovered[0].fingerprint, fp1);
        assert_eq!(recovered[1].fingerprint, fp2);
        assert_eq!(recovered[0].entry.schedule_json, e1.schedule_json);
        assert_eq!(recovered[0].entry.stats, e1.stats);
        assert!((recovered[0].entry.compile_s - e1.compile_s).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blob_is_skipped_and_deleted() {
        let dir = temp_dir("corrupt");
        let (store, _) = ScheduleStore::open(&dir).unwrap();
        let (fp1, e1) = sample_entry(1);
        store.persist(fp1, &e1);
        // Truncate the blob mid-document, like a torn write without the
        // tmp+rename discipline.
        let blob = store.blob_path(&fp1);
        let bytes = std::fs::read(&blob).unwrap();
        std::fs::write(&blob, &bytes[..bytes.len() / 2]).unwrap();
        drop(store);

        let (store, recovered) = ScheduleStore::open(&dir).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(store.recovery().discarded, 1);
        assert!(!blob.exists(), "corrupt blob removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_cleaned_up() {
        let dir = temp_dir("tmp");
        std::fs::create_dir_all(&dir).unwrap();
        let stray = dir.join("deadbeef.schedule.json.tmp");
        std::fs::write(&stray, "{half a docu").unwrap();
        let (store, recovered) = ScheduleStore::open(&dir).unwrap();
        assert!(recovered.is_empty());
        assert!(!stray.exists());
        assert_eq!(store.recovery().discarded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unindexed_blob_is_adopted() {
        let dir = temp_dir("adopt");
        let (store, _) = ScheduleStore::open(&dir).unwrap();
        let (fp1, e1) = sample_entry(1);
        store.persist(fp1, &e1);
        // Simulate a kill between blob rename and journal append: nuke
        // the snapshot *and* the journal but keep the blob.
        std::fs::remove_file(dir.join("index.json")).unwrap();
        let _ = std::fs::remove_file(dir.join(JOURNAL_NAME));
        drop(store);

        let (store, recovered) = ScheduleStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(store.recovery().adopted, 1);
        assert_eq!(recovered[0].entry.schedule_json, e1.schedule_json);
        // Adoption loses the compile time but recomputes the stats.
        assert_eq!(recovered[0].entry.compile_s, 0.0);
        assert_eq!(recovered[0].entry.stats, e1.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_blob_and_index_row() {
        let dir = temp_dir("remove");
        let (store, _) = ScheduleStore::open(&dir).unwrap();
        let (fp1, e1) = sample_entry(1);
        let (fp2, e2) = sample_entry(2);
        store.persist(fp1, &e1);
        store.persist(fp2, &e2);
        store.remove(&fp1);
        assert_eq!(store.removed(), 1);
        assert!(!store.blob_path(&fp1).exists());
        drop(store);
        let (_, recovered) = ScheduleStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].fingerprint, fp2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_degrades_to_scan() {
        let dir = temp_dir("badindex");
        let (store, _) = ScheduleStore::open(&dir).unwrap();
        let (fp1, e1) = sample_entry(1);
        store.persist(fp1, &e1);
        std::fs::write(dir.join("index.json"), "][ not json").unwrap();
        // Kill the journal too: replay would otherwise paper over the
        // snapshot damage this test is about.
        std::fs::write(dir.join(JOURNAL_NAME), "").unwrap();
        drop(store);
        let (_, recovered) = ScheduleStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].entry.schedule_json, e1.schedule_json);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inserts_append_journal_lines_instead_of_rewriting_the_index() {
        let dir = temp_dir("journal");
        let (store, _) = ScheduleStore::open(&dir).unwrap();
        let snapshot_after_open = std::fs::read_to_string(dir.join("index.json")).unwrap();
        let (fp1, e1) = sample_entry(1);
        let (fp2, e2) = sample_entry(2);
        store.persist(fp1, &e1);
        store.persist(fp2, &e2);
        store.remove(&fp1);
        // Three mutations → three journal lines; the snapshot is untouched.
        assert_eq!(store.journal_lines(), 3);
        assert_eq!(
            std::fs::read_to_string(dir.join("index.json")).unwrap(),
            snapshot_after_open,
            "insert/remove must not rewrite the snapshot"
        );

        // Recovery = snapshot + journal replay.
        drop(store);
        let (store, recovered) = ScheduleStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].fingerprint, fp2);
        assert_eq!(recovered[0].entry.schedule_json, e2.schedule_json);
        assert!(
            (recovered[0].entry.compile_s - e2.compile_s).abs() < 1e-12,
            "journal replay keeps compile_s"
        );
        // Recovery compacted: journal empty, snapshot has the survivor.
        assert_eq!(store.journal_lines(), 0);
        assert!(std::fs::read_to_string(dir.join("index.json"))
            .unwrap()
            .contains(&fp2.to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_skipped() {
        let dir = temp_dir("torn");
        let (store, _) = ScheduleStore::open(&dir).unwrap();
        let (fp1, e1) = sample_entry(1);
        store.persist(fp1, &e1);
        drop(store);
        // A crash mid-append leaves a half-written final line.
        let journal = dir.join(JOURNAL_NAME);
        let mut text = std::fs::read_to_string(&journal).unwrap();
        text.push_str("{\"op\":\"remove\",\"fingerpr");
        std::fs::write(&journal, text).unwrap();

        let (store, recovered) = ScheduleStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1, "torn tail must not lose good rows");
        assert_eq!(store.recovery().loaded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crossing_the_journal_threshold_arms_exactly_one_compaction() {
        let dir = temp_dir("compactgate");
        let (store, _) = ScheduleStore::open_with(
            &dir,
            StoreOptions {
                journal_threshold: 2,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let (fp1, e1) = sample_entry(1);
        let (fp2, e2) = sample_entry(2);
        assert!(!store.try_begin_compaction(), "below threshold");
        store.persist(fp1, &e1);
        store.persist(fp2, &e2);
        assert!(store.try_begin_compaction());
        assert!(
            !store.try_begin_compaction(),
            "second claimant must lose while a compaction is pending"
        );
        store.compact_now();
        assert_eq!(store.journal_lines(), 0);
        assert!(!store.try_begin_compaction(), "journal drained");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_oldest_blobs_on_insert() {
        let dir = temp_dir("budget");
        let (_, e) = sample_entry(1);
        let blob_bytes = e.schedule_json.len() as u64;
        // Room for two blobs, not three.
        let (store, _) = ScheduleStore::open_with(
            &dir,
            StoreOptions {
                max_bytes: Some(blob_bytes * 2 + blob_bytes / 2),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let (fp1, e1) = sample_entry(1);
        let (fp2, e2) = sample_entry(2);
        let (fp3, e3) = sample_entry(3);
        store.persist(fp1, &e1);
        store.persist(fp2, &e2);
        assert_eq!(store.size_evicted(), 0);
        store.persist(fp3, &e3);
        assert_eq!(store.size_evicted(), 1, "oldest blob evicted");
        assert!(!store.blob_path(&fp1).exists());
        assert!(store.blob_path(&fp2).exists());
        assert!(store.blob_path(&fp3).exists());
        assert!(store.bytes() <= blob_bytes * 2 + blob_bytes / 2);

        // The budget holds across recovery too.
        drop(store);
        let (store, recovered) = ScheduleStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].fingerprint, fp2);
        assert_eq!(recovered[1].fingerprint, fp3);
        assert_eq!(store.bytes(), blob_bytes * 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_failure_leaves_entry_unindexed() {
        let dir = temp_dir("failwrite");
        let (store, _) = ScheduleStore::open_with(
            &dir,
            StoreOptions {
                faults: Arc::new(Faults::from_spec(
                    &crate::faults::FaultSpec::parse("store-write-fail:1").unwrap(),
                )),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let (fp1, e1) = sample_entry(1);
        let (fp2, e2) = sample_entry(2);
        store.persist(fp1, &e1); // injected failure
        assert_eq!(store.len(), 0);
        assert_eq!(store.persisted(), 0);
        assert!(!store.blob_path(&fp1).exists());
        store.persist(fp2, &e2); // fault budget exhausted → succeeds
        assert_eq!(store.len(), 1);
        drop(store);
        let (_, recovered) = ScheduleStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].fingerprint, fp2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The generic high-parallelism router for arbitrary circuits (Alg. 1).
//!
//! The input circuit is decomposed to the native `CZ/ZZ + 1Q` set, then
//! consumed front-layer by front-layer:
//!
//! 1. ready 1Q gates run immediately on the Raman laser;
//! 2. from the ready 2Q gates (sorted by first-qubit index) a maximal
//!    *legal subset* is selected greedily under the AOD order-compatibility
//!    rule ([`crate::legality`]);
//! 3. the subset executes as one flying-ancilla stage: one fresh ancilla
//!    per gate is transferred into the AOD, copies the first operand's
//!    state (transversal CNOT), flies to the second operand, interacts
//!    under a global Rydberg pulse, flies back and is recycled.
//!
//! Each stage therefore contributes 3 two-qubit layers (create, interact,
//! recycle) and `3·|S|` native 2Q gates — exactly the cost model of §2.1
//! ("the new approach only increases depth by 2").

use qpilot_circuit::{decompose, Circuit, Gate, Operands, Qubit};

use crate::error::RouteError;
use crate::legality::{axis_ranks, GatePlacement};
use crate::motion::{axis_coords, park_col_base, park_row_base};
use crate::schedule::{AtomRef, CompiledProgram, RydbergKind, RydbergOp, Schedule, Stage,
                      TransferOp};
use crate::FpqaConfig;

/// Options for [`GenericRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenericRouterOptions {
    /// Upper bound on gates per stage (defaults to the AOD grid size).
    pub stage_cap: Option<usize>,
}

/// The generic flying-ancilla router (Alg. 1 of the paper).
///
/// # Example
///
/// ```
/// use qpilot_circuit::Circuit;
/// use qpilot_core::{generic::GenericRouter, FpqaConfig};
///
/// let mut c = Circuit::new(4);
/// c.cz(0, 1).cz(2, 3).cz(1, 2);
/// let cfg = FpqaConfig::for_qubits(4, 2);
/// let program = GenericRouter::new().route(&c, &cfg).unwrap();
/// // cz(0,1) and cz(2,3) share a stage; cz(1,2) needs a second one.
/// assert_eq!(program.stats().two_qubit_depth, 6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GenericRouter {
    options: GenericRouterOptions,
}

impl GenericRouter {
    /// Creates a router with default options.
    pub fn new() -> Self {
        GenericRouter::default()
    }

    /// Creates a router with explicit options.
    pub fn with_options(options: GenericRouterOptions) -> Self {
        GenericRouter { options }
    }

    /// Routes `circuit` onto the FPQA, producing a validated-shape schedule.
    ///
    /// # Errors
    ///
    /// * [`RouteError::TooManyQubits`] if the circuit is wider than the SLM
    ///   data register,
    /// * [`RouteError::AodTooSmall`] if the AOD grid has no lines at all.
    pub fn route(
        &self,
        circuit: &Circuit,
        config: &FpqaConfig,
    ) -> Result<CompiledProgram, RouteError> {
        if circuit.num_qubits() > config.num_data() {
            return Err(RouteError::TooManyQubits {
                required: circuit.num_qubits(),
                available: config.num_data(),
            });
        }
        let native = decompose::to_cz_basis(circuit);
        let cap_geom = config.aod_rows().min(config.aod_cols());
        if cap_geom == 0 && native.two_qubit_count() > 0 {
            return Err(RouteError::AodTooSmall {
                required: 1,
                available: 0,
            });
        }
        let cap = self
            .options
            .stage_cap
            .map(|c| c.min(cap_geom))
            .unwrap_or(cap_geom)
            .max(1);

        let mut schedule = Schedule::new(
            config.num_data(),
            config.aod_rows(),
            config.aod_cols(),
        );
        let mut frontier = qpilot_circuit::Frontier::new(&native);
        let gates = native.gates();

        while !frontier.is_done() {
            // Drain ready 1Q gates onto the Raman laser.
            loop {
                let ready_1q: Vec<usize> = frontier
                    .front_layer()
                    .iter()
                    .copied()
                    .filter(|&id| gates[id].is_single_qubit())
                    .collect();
                if ready_1q.is_empty() {
                    break;
                }
                let layer: Vec<Gate> = ready_1q.iter().map(|&id| gates[id]).collect();
                schedule.push(Stage::Raman(layer));
                for id in ready_1q {
                    frontier.execute(id);
                }
            }
            if frontier.is_done() {
                break;
            }

            // Select a maximal legal subset of the 2Q front layer.
            let mut candidates: Vec<usize> = frontier.front_layer().to_vec();
            candidates.sort_by_key(|&id| operand_key(&gates[id]));
            let placements: Vec<GatePlacement> = candidates
                .iter()
                .map(|&id| placement_of(&gates[id], config))
                .collect();
            let mut subset: Vec<usize> = Vec::new(); // indices into candidates
            for (i, cand) in placements.iter().enumerate() {
                if subset.len() >= cap {
                    break;
                }
                if subset
                    .iter()
                    .all(|&j| crate::legality::pair_compatible(&placements[j], cand))
                {
                    subset.push(i);
                }
            }
            debug_assert!(!subset.is_empty(), "front layer gate must be schedulable alone");

            let staged: Vec<StagedGate> = subset
                .iter()
                .map(|&i| {
                    let id = candidates[i];
                    let (q1, q2) = two_qubit_operands(&gates[id]);
                    StagedGate {
                        placement: placements[i],
                        q1,
                        q2,
                        kind: match gates[id] {
                            Gate::Zz(_, _, theta) => RydbergKind::Zz(theta),
                            _ => RydbergKind::Cz,
                        },
                    }
                })
                .collect();
            emit_stage(&mut schedule, config, &staged);
            for &i in &subset {
                frontier.execute(candidates[i]);
            }
        }
        Ok(CompiledProgram::new(schedule))
    }
}

/// One gate selected into a stage.
#[derive(Debug, Clone, Copy)]
struct StagedGate {
    placement: GatePlacement,
    q1: Qubit,
    q2: Qubit,
    kind: RydbergKind,
}

fn operand_key(g: &Gate) -> (u32, u32) {
    match g.operands() {
        Operands::Two(a, b) => (a.raw(), b.raw()),
        Operands::One(a) => (a.raw(), a.raw()),
    }
}

fn two_qubit_operands(g: &Gate) -> (Qubit, Qubit) {
    match g.operands() {
        Operands::Two(a, b) => (a, b),
        Operands::One(_) => unreachable!("2Q stage received a 1Q gate"),
    }
}

fn placement_of(g: &Gate, config: &FpqaConfig) -> GatePlacement {
    let (a, b) = two_qubit_operands(g);
    GatePlacement::new(config.coord_of(a.raw()), config.coord_of(b.raw()))
}

/// Emits the full three-phase flying-ancilla stage for a legal subset.
fn emit_stage(schedule: &mut Schedule, config: &FpqaConfig, staged: &[StagedGate]) {
    let n = staged.len();
    let placements: Vec<GatePlacement> = staged.iter().map(|s| s.placement).collect();
    let row_rank = axis_ranks(&placements, true);
    let col_rank = axis_ranks(&placements, false);

    // Ancilla per gate, pinned to cross (row_rank, col_rank).
    let ancillas: Vec<crate::AncillaId> = staged.iter().map(|_| schedule.fresh_ancilla()).collect();

    // Per-rank SLM targets for both phases.
    let mut create_rows = vec![0usize; n];
    let mut exec_rows = vec![0usize; n];
    let mut create_cols = vec![0usize; n];
    let mut exec_cols = vec![0usize; n];
    for (i, s) in staged.iter().enumerate() {
        create_rows[row_rank[i]] = s.placement.source.row;
        exec_rows[row_rank[i]] = s.placement.target.row;
        create_cols[col_rank[i]] = s.placement.source.col;
        exec_cols[col_rank[i]] = s.placement.target.col;
    }

    let pitch = config.pitch_um();
    let (rows_total, cols_total) = (schedule.aod_rows, schedule.aod_cols);
    let create_y = axis_coords(&create_rows, rows_total, pitch, park_row_base(config));
    let create_x = axis_coords(&create_cols, cols_total, pitch, park_col_base(config));
    let exec_y = axis_coords(&exec_rows, rows_total, pitch, park_row_base(config));
    let exec_x = axis_coords(&exec_cols, cols_total, pitch, park_col_base(config));

    // Load ancillas.
    schedule.push(Stage::Transfer(
        (0..n)
            .map(|i| TransferOp {
                ancilla: ancillas[i],
                row: row_rank[i],
                col: col_rank[i],
                load: true,
            })
            .collect(),
    ));

    // Phase 1: copy states (transversal CNOT q1 -> ancilla).
    schedule.push(Stage::Move {
        row_y: create_y.clone(),
        col_x: create_x.clone(),
    });
    let h_layer: Vec<Gate> = ancillas
        .iter()
        .map(|&a| Gate::H(schedule.ancilla_qubit(a)))
        .collect();
    schedule.push(Stage::Raman(h_layer.clone()));
    schedule.push(Stage::Rydberg(
        staged
            .iter()
            .enumerate()
            .map(|(i, s)| RydbergOp::cz(AtomRef::Data(s.q1.raw()), AtomRef::Ancilla(ancillas[i])))
            .collect(),
    ));
    schedule.push(Stage::Raman(h_layer.clone()));

    // Phase 2: fly to targets and interact.
    schedule.push(Stage::Move {
        row_y: exec_y,
        col_x: exec_x,
    });
    schedule.push(Stage::Rydberg(
        staged
            .iter()
            .enumerate()
            .map(|(i, s)| RydbergOp {
                a: AtomRef::Ancilla(ancillas[i]),
                b: AtomRef::Data(s.q2.raw()),
                kind: s.kind,
            })
            .collect(),
    ));

    // Phase 3: fly back and recycle (transversal CNOT again).
    schedule.push(Stage::Move {
        row_y: create_y,
        col_x: create_x,
    });
    schedule.push(Stage::Raman(h_layer.clone()));
    schedule.push(Stage::Rydberg(
        staged
            .iter()
            .enumerate()
            .map(|(i, s)| RydbergOp::cz(AtomRef::Data(s.q1.raw()), AtomRef::Ancilla(ancillas[i])))
            .collect(),
    ));
    schedule.push(Stage::Raman(h_layer));

    // Return the atoms.
    schedule.push(Stage::Transfer(
        (0..n)
            .map(|i| TransferOp {
                ancilla: ancillas[i],
                row: row_rank[i],
                col: col_rank[i],
                load: false,
            })
            .collect(),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_schedule;

    fn route(c: &Circuit, cfg: &FpqaConfig) -> CompiledProgram {
        GenericRouter::new().route(c, cfg).expect("routing failed")
    }

    #[test]
    fn single_cz_costs_three_layers() {
        let mut c = Circuit::new(4);
        c.cz(0, 3);
        let cfg = FpqaConfig::for_qubits(4, 2);
        let p = route(&c, &cfg);
        assert_eq!(p.stats().two_qubit_depth, 3);
        assert_eq!(p.stats().two_qubit_gates, 3);
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
    }

    #[test]
    fn compatible_gates_share_a_stage() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3);
        let cfg = FpqaConfig::for_qubits(4, 2);
        let p = route(&c, &cfg);
        // One stage of two gates: depth 3, gates 6.
        assert_eq!(p.stats().two_qubit_depth, 3);
        assert_eq!(p.stats().two_qubit_gates, 6);
        assert_eq!(p.schedule().num_ancillas, 2);
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
    }

    #[test]
    fn dependent_gates_serialise() {
        let mut c = Circuit::new(3);
        c.cz(0, 1).cz(1, 2);
        let cfg = FpqaConfig::for_qubits(3, 3);
        let p = route(&c, &cfg);
        assert_eq!(p.stats().two_qubit_depth, 6);
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
    }

    #[test]
    fn one_qubit_gates_run_on_raman() {
        let mut c = Circuit::new(2);
        c.h(0).t(1).cz(0, 1).h(1);
        let cfg = FpqaConfig::for_qubits(2, 2);
        let p = route(&c, &cfg);
        let stats = p.stats();
        // 2 circuit 1Q + trailing h + 4 ancilla H per stage.
        assert_eq!(stats.one_qubit_gates, 3 + 4);
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
    }

    #[test]
    fn cx_is_decomposed_then_routed() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let cfg = FpqaConfig::for_qubits(2, 2);
        let p = route(&c, &cfg);
        assert_eq!(p.stats().two_qubit_gates, 3);
        // The two H's from CX decomposition run as Raman stages.
        assert!(p.stats().one_qubit_gates >= 2);
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
    }

    #[test]
    fn zz_gates_keep_their_angle() {
        let mut c = Circuit::new(4);
        c.zz(0, 2, 0.321);
        let cfg = FpqaConfig::for_qubits(4, 2);
        let p = route(&c, &cfg);
        let has_zz = p.schedule().rydberg_stages().any(|ops| {
            ops.iter()
                .any(|op| matches!(op.kind, RydbergKind::Zz(t) if (t - 0.321).abs() < 1e-12))
        });
        assert!(has_zz);
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
    }

    #[test]
    fn fig5_example_subsets() {
        // 12 qubits on a 3x4 grid, gates g0..g3 of Fig. 5.
        let mut c = Circuit::new(12);
        c.cz(0, 2).cz(5, 10).cz(6, 8).cz(9, 11);
        let cfg = FpqaConfig::for_qubits(12, 4);
        let p = route(&c, &cfg);
        // g0, g1, g3 share a stage; g2 gets its own: 2 stages = depth 6.
        assert_eq!(p.stats().two_qubit_depth, 6);
        assert_eq!(p.stats().two_qubit_gates, 12);
        validate_schedule(p.schedule(), &cfg).expect("valid schedule");
    }

    #[test]
    fn stage_cap_limits_parallelism() {
        let mut c = Circuit::new(8);
        c.cz(0, 1).cz(2, 3).cz(4, 5).cz(6, 7);
        let cfg = FpqaConfig::for_qubits(8, 4);
        let capped = GenericRouter::with_options(GenericRouterOptions { stage_cap: Some(1) })
            .route(&c, &cfg)
            .unwrap();
        assert_eq!(capped.stats().two_qubit_depth, 12); // 4 stages
        let free = route(&c, &cfg);
        assert!(free.stats().two_qubit_depth < capped.stats().two_qubit_depth);
    }

    #[test]
    fn too_wide_circuit_rejected() {
        let c = Circuit::new(10);
        let cfg = FpqaConfig::for_qubits(4, 2);
        assert_eq!(
            GenericRouter::new().route(&c, &cfg).unwrap_err(),
            RouteError::TooManyQubits {
                required: 10,
                available: 4
            }
        );
    }

    #[test]
    fn empty_circuit_empty_schedule() {
        let c = Circuit::new(3);
        let cfg = FpqaConfig::for_qubits(3, 3);
        let p = route(&c, &cfg);
        assert_eq!(p.stats().two_qubit_depth, 0);
        assert!(p.schedule().stages.is_empty());
    }

    #[test]
    fn all_ancillas_recycled() {
        let mut c = Circuit::new(6);
        c.cz(0, 5).cz(1, 4).cz(2, 3).cz(0, 1).cz(4, 5);
        let cfg = FpqaConfig::for_qubits(6, 3);
        let p = route(&c, &cfg);
        let report = validate_schedule(p.schedule(), &cfg).expect("valid schedule");
        assert_eq!(report.leftover_ancillas, 0);
    }
}

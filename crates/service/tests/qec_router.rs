//! Semantic, golden and cache-key tests for the QEC syndrome-extraction
//! router, driven from outside the core crate so the checks cover the
//! same artefacts the serving tier caches and ships: the canonical wire
//! bytes of `qpilot.schedule/v1` and the `qpilot.compile/v2` cache key.
//!
//! * physics: the lowered schedule implements `reference_circuit` on the
//!   data register with clean ancillas (`verify_compiled` exhaustively at
//!   d = 2; random-state fidelity plus leakage at d = 3),
//! * invariance: serial and parallel-wave schedules realise the same
//!   full-register unitary (the stabilizer-phase factors commute),
//! * goldens: FNV-1a pins over the canonical wire bytes at d ∈ {3, 5}
//!   catch any accidental change to the emitted stage stream,
//! * cache keys: the qec option-hash domain is disjoint from the other
//!   three router families on an identical array config.

use qpilot_core::compile::{fingerprint, QecWorkload, Workload};
use qpilot_core::qec::{reference_circuit, QecRouter, QecRouterOptions};
use qpilot_core::wire::{schedule_from_json, schedule_to_json};
use qpilot_core::FpqaConfig;
use qpilot_sim::equiv::{ancilla_leakage, equal_up_to_global_phase, verify_compiled};
use qpilot_sim::{Complex, StateVector};

fn workload(distance: u32, rounds: u32) -> QecWorkload {
    QecWorkload {
        distance,
        rounds,
        theta: 0.37,
    }
}

fn route(w: &QecWorkload, parallel_waves: bool) -> qpilot_core::CompiledProgram {
    let config = Workload::Qec(*w).config(None);
    QecRouter::with_options(QecRouterOptions { parallel_waves })
        .route_rounds(w, &config)
        .expect("route qec workload")
}

/// FNV-1a over the canonical wire bytes — the same stable-hash family
/// the repo's other golden pins use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn d2_schedule_is_exhaustively_equivalent_to_the_reference() {
    for parallel in [true, false] {
        let w = workload(2, 2);
        let compiled = route(&w, parallel).schedule().to_circuit();
        let result = verify_compiled(&compiled, &reference_circuit(&w));
        assert!(
            result.equivalent,
            "parallel={parallel}: leakage {:.3e}, deviation {:.3e}",
            result.max_ancilla_leakage, result.max_deviation
        );
    }
}

#[test]
fn d3_schedule_matches_the_reference_on_random_states() {
    let w = workload(3, 1);
    let compiled = route(&w, true).schedule().to_circuit();
    let num_data = 9u32;
    let data_dim = 1usize << num_data;

    for seed in [7u64, 8] {
        // Random data state, ancillas |0⟩: padding the amplitude vector
        // with zeros is exactly |ψ⟩ ⊗ |0…0⟩ in little-endian ordering.
        let data_state = StateVector::random(num_data, seed);
        let mut amps = data_state.amplitudes().to_vec();
        amps.resize(1 << compiled.num_qubits(), Complex::ZERO);
        let mut full = StateVector::from_amplitudes(amps);
        full.apply_circuit(&compiled);
        let leak = ancilla_leakage(&full, num_data);
        assert!(leak < 1e-9, "seed {seed}: ancilla leakage {leak:.3e}");

        let compiled_data = StateVector::from_amplitudes(full.amplitudes()[..data_dim].to_vec());
        let mut ref_state = data_state;
        ref_state.apply_circuit(&reference_circuit(&w));
        assert!(
            equal_up_to_global_phase(&compiled_data, &ref_state, 1e-9),
            "seed {seed}: data-register states diverge"
        );
    }
}

#[test]
fn serial_and_parallel_schedules_share_one_unitary() {
    // Every stabilizer-phase factor commutes, so the wave grouping must
    // not change the compiled unitary — checked on the *full* register
    // (data ⊗ ancillas), which is stronger than data-only equivalence.
    let w = workload(3, 1);
    let parallel = route(&w, true).schedule().to_circuit();
    let serial = route(&w, false).schedule().to_circuit();
    assert_eq!(parallel.num_qubits(), serial.num_qubits());
    let fidelity = qpilot_sim::equiv::random_state_fidelity(&parallel, &serial, 11);
    assert!(fidelity > 1.0 - 1e-9, "fidelity {fidelity}");
}

#[test]
fn wire_bytes_round_trip_exactly() {
    for (d, parallel) in [(3u32, true), (3, false), (5, true)] {
        let program = route(&workload(d, 1), parallel);
        let json = schedule_to_json(program.schedule());
        let back = schedule_from_json(&json).expect("wire bytes parse");
        assert_eq!(
            schedule_to_json(&back),
            json,
            "d={d} parallel={parallel}: canonical re-serialisation drifted"
        );
    }
}

#[test]
fn golden_wire_byte_pins_at_d3_and_d5() {
    // Byte-identity pins over the canonical schedule JSON. These freeze
    // the router's emitted stage stream: any change to wave order,
    // coordinates, mirroring or serialisation shows up here before it
    // silently invalidates every persisted cache entry.
    for (d, expected) in [(3u32, GOLDEN_D3), (5, GOLDEN_D5)] {
        let program = route(&workload(d, 1), true);
        let actual = fnv1a(schedule_to_json(program.schedule()).as_bytes());
        assert_eq!(
            actual, expected,
            "d={d}: wire bytes changed (fnv1a {actual:#018x}); if intentional, re-pin"
        );
    }
}

const GOLDEN_D3: u64 = 0x1157_8aa8_864c_df42;
const GOLDEN_D5: u64 = 0x6f11_3317_d980_b975;

#[test]
fn qec_fingerprints_are_disjoint_from_the_other_families() {
    // Identical array config for all four families: only the workload
    // domain separates the cache keys.
    let cfg = FpqaConfig::square_for(4);
    let mut circuit = qpilot_circuit::Circuit::new(4);
    circuit.zz(0, 1, 0.37);
    let fps = [
        fingerprint(&Workload::circuit(circuit), None, &cfg),
        fingerprint(
            &Workload::pauli_strings(vec!["ZZII".parse().unwrap()], 0.37),
            None,
            &cfg,
        ),
        fingerprint(
            &Workload::qaoa_cost_layer(4, vec![(0, 1)], 0.37),
            None,
            &cfg,
        ),
        fingerprint(&Workload::surface_code(2, 1, 0.37), None, &cfg),
    ];
    for i in 0..fps.len() {
        for j in i + 1..fps.len() {
            assert_ne!(fps[i], fps[j], "families {i} and {j} collide");
        }
    }
    // And within qec: distance, rounds, theta and wave mode all key.
    let base = fps[3];
    for other in [
        fingerprint(&Workload::surface_code(3, 1, 0.37), None, &cfg),
        fingerprint(&Workload::surface_code(2, 2, 0.37), None, &cfg),
        fingerprint(&Workload::surface_code(2, 1, 0.38), None, &cfg),
    ] {
        assert_ne!(base, other);
    }
}

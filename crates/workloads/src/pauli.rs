//! Random Pauli-string workloads (Fig. 12).
//!
//! "Quantum simulation circuits were formed from 100 random Pauli strings.
//! The probability p of a qubit having a Pauli operator X, Y, or Z varies
//! from 0.1 to 0.5." Weight-zero draws are rejected and resampled so every
//! string does real work.

use qpilot_circuit::{Pauli, PauliString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_pauli_strings`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauliWorkloadConfig {
    /// Register width.
    pub num_qubits: usize,
    /// Number of strings (the paper uses 100).
    pub num_strings: usize,
    /// Per-qubit probability of a non-identity Pauli.
    pub pauli_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PauliWorkloadConfig {
    /// The paper's setup: 100 strings at probability `p`.
    pub fn paper(num_qubits: usize, pauli_probability: f64, seed: u64) -> Self {
        PauliWorkloadConfig {
            num_qubits,
            num_strings: 100,
            pauli_probability,
            seed,
        }
    }
}

/// Draws `num_strings` random non-identity Pauli strings.
///
/// # Panics
///
/// Panics if the probability is outside `(0, 1]` or `num_qubits == 0`.
pub fn random_pauli_strings(config: &PauliWorkloadConfig) -> Vec<PauliString> {
    assert!(config.num_qubits > 0, "need at least one qubit");
    assert!(
        config.pauli_probability > 0.0 && config.pauli_probability <= 1.0,
        "pauli probability must be in (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.num_strings);
    while out.len() < config.num_strings {
        let paulis: Vec<Pauli> = (0..config.num_qubits)
            .map(|_| {
                if rng.gen_bool(config.pauli_probability) {
                    Pauli::NON_IDENTITY[rng.gen_range(0..3usize)]
                } else {
                    Pauli::I
                }
            })
            .collect();
        let s = PauliString::new(paulis);
        if !s.is_identity() {
            out.push(s);
        }
    }
    out
}

/// Summary statistics over a set of strings, used by reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauliSetStats {
    /// Number of strings.
    pub count: usize,
    /// Mean weight (non-identity positions per string).
    pub mean_weight: f64,
    /// Maximum weight.
    pub max_weight: usize,
}

/// Computes [`PauliSetStats`].
pub fn stats(strings: &[PauliString]) -> PauliSetStats {
    let count = strings.len();
    let total: usize = strings.iter().map(|s| s.weight()).sum();
    PauliSetStats {
        count,
        mean_weight: if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        },
        max_weight: strings.iter().map(|s| s.weight()).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_width() {
        let cfg = PauliWorkloadConfig::paper(20, 0.3, 1);
        let strings = random_pauli_strings(&cfg);
        assert_eq!(strings.len(), 100);
        assert!(strings.iter().all(|s| s.num_qubits() == 20));
    }

    #[test]
    fn no_identity_strings() {
        let cfg = PauliWorkloadConfig::paper(5, 0.1, 2);
        assert!(random_pauli_strings(&cfg).iter().all(|s| s.weight() > 0));
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = PauliWorkloadConfig::paper(10, 0.5, 9);
        assert_eq!(random_pauli_strings(&cfg), random_pauli_strings(&cfg));
    }

    #[test]
    fn weight_tracks_probability() {
        let lo = random_pauli_strings(&PauliWorkloadConfig::paper(100, 0.1, 3));
        let hi = random_pauli_strings(&PauliWorkloadConfig::paper(100, 0.5, 3));
        let (slo, shi) = (stats(&lo), stats(&hi));
        assert!(slo.mean_weight > 5.0 && slo.mean_weight < 15.0);
        assert!(shi.mean_weight > 40.0 && shi.mean_weight < 60.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_rejected() {
        random_pauli_strings(&PauliWorkloadConfig::paper(5, 0.0, 0));
    }

    #[test]
    fn stats_of_empty_set() {
        let s = stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_weight, 0.0);
    }
}

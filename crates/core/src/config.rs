//! FPQA machine configuration handed to the routers.

use std::fmt;

use qpilot_arch::{GridCoord, PhysicalParams, Position, RydbergModel, SlmArray};

/// An FPQA instance: the SLM data array, the AOD grid dimensions, the
/// Rydberg interaction model and physical constants.
///
/// Data qubits map to SLM sites in reading order (§3.1 of the paper: "we
/// simply map qubits in reading order throughout").
///
/// # Example
///
/// ```
/// use qpilot_core::FpqaConfig;
///
/// let cfg = FpqaConfig::for_qubits(10, 4); // 4 columns -> 3x4 SLM array
/// assert_eq!(cfg.slm().rows(), 3);
/// assert_eq!(cfg.num_data(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FpqaConfig {
    num_data: u32,
    slm: SlmArray,
    aod_rows: usize,
    aod_cols: usize,
    rydberg: RydbergModel,
    params: PhysicalParams,
}

impl FpqaConfig {
    /// Builds a configuration for `num_data` qubits on an SLM array of the
    /// given width (columns), with a matching AOD grid.
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0` or `num_data == 0`.
    pub fn for_qubits(num_data: u32, cols: usize) -> Self {
        assert!(num_data > 0, "need at least one data qubit");
        let params = PhysicalParams::default();
        let rows = (num_data as usize).div_ceil(cols).max(1);
        let mut slm = SlmArray::new(rows, cols, params.site_spacing_um);
        // Rydberg blockade at 1.5 um with 2.5x safety keeps grid neighbours
        // (one pitch apart) fully decoupled while allowing ancillas to park
        // in row/column gaps; see qpilot-arch::RydbergModel.
        let rydberg = RydbergModel::new(1.5, 2.5);
        if slm.num_sites() < num_data as usize {
            slm = SlmArray::new(rows + 1, cols, params.site_spacing_um);
        }
        FpqaConfig {
            num_data,
            aod_rows: slm.rows(),
            aod_cols: slm.cols(),
            slm,
            rydberg,
            params,
        }
    }

    /// Square configuration: smallest `w × w` SLM array holding `num_data`
    /// qubits.
    pub fn square_for(num_data: u32) -> Self {
        let w = (num_data as f64).sqrt().ceil() as usize;
        Self::for_qubits(num_data, w.max(1))
    }

    /// A `n×n`-site configuration for exactly `n*n` data qubits.
    pub fn square(n: usize) -> Self {
        Self::for_qubits((n * n) as u32, n)
    }

    /// Number of data qubits.
    pub fn num_data(&self) -> u32 {
        self.num_data
    }

    /// The SLM array.
    pub fn slm(&self) -> &SlmArray {
        &self.slm
    }

    /// AOD grid rows.
    pub fn aod_rows(&self) -> usize {
        self.aod_rows
    }

    /// AOD grid columns.
    pub fn aod_cols(&self) -> usize {
        self.aod_cols
    }

    /// Overrides the AOD grid dimensions.
    pub fn with_aod_grid(mut self, rows: usize, cols: usize) -> Self {
        self.aod_rows = rows;
        self.aod_cols = cols;
        self
    }

    /// The Rydberg interaction model.
    pub fn rydberg(&self) -> &RydbergModel {
        &self.rydberg
    }

    /// Physical constants.
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }

    /// Replaces the physical parameters (e.g. for fidelity sweeps).
    pub fn with_params(mut self, params: PhysicalParams) -> Self {
        self.params = params;
        self
    }

    /// Grid coordinate of data qubit `q` (reading order).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside the data register.
    pub fn coord_of(&self, q: u32) -> GridCoord {
        assert!(q < self.num_data, "qubit {q} outside data register");
        self.slm.coord_of(q as usize)
    }

    /// Physical position of data qubit `q`.
    pub fn position_of(&self, q: u32) -> Position {
        self.slm.position(self.coord_of(q))
    }

    /// Data qubit at coordinate `coord`, if the site is mapped.
    pub fn qubit_at(&self, coord: GridCoord) -> Option<u32> {
        if coord.row >= self.slm.rows() || coord.col >= self.slm.cols() {
            return None;
        }
        let site = self.slm.site_at(coord) as u32;
        (site < self.num_data).then_some(site)
    }

    /// Offset (µm) at which an ancilla parks next to an interaction partner.
    pub fn interaction_offset_um(&self) -> f64 {
        self.rydberg.interaction_offset_um()
    }

    /// The SLM pitch (µm).
    pub fn pitch_um(&self) -> f64 {
        self.slm.spacing_um()
    }
}

impl FpqaConfig {
    /// Hashes every compilation-relevant architecture parameter into `h`
    /// (for content-addressed schedule caching). Two configs hash equal
    /// iff every router in this crate treats them identically.
    pub fn fingerprint_into(&self, h: &mut qpilot_circuit::StableHasher) {
        h.write_str("qpilot.fpqa/v1");
        h.write_u32(self.num_data);
        h.write_usize(self.slm.rows());
        h.write_usize(self.slm.cols());
        h.write_f64(self.slm.spacing_um());
        h.write_usize(self.aod_rows);
        h.write_usize(self.aod_cols);
        h.write_f64(self.rydberg.radius_um);
        h.write_f64(self.rydberg.safety_factor);
        let p = &self.params;
        h.write_f64(p.site_spacing_um);
        h.write_f64(p.fidelity_1q);
        h.write_f64(p.fidelity_2q);
        h.write_f64(p.t2_s);
        h.write_f64(p.t0_s);
        h.write_f64(p.t_1q_s);
        h.write_f64(p.t_2q_s);
        h.write_f64(p.t_transfer_s);
    }
}

impl fmt::Display for FpqaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fpqa[{} data qubits on {}, aod {}x{}, {}]",
            self.num_data, self.slm, self.aod_rows, self.aod_cols, self.rydberg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_qubits_sizes_array() {
        let cfg = FpqaConfig::for_qubits(10, 4);
        assert_eq!(cfg.slm().rows(), 3);
        assert_eq!(cfg.slm().cols(), 4);
        assert!(cfg.slm().num_sites() >= 10);
    }

    #[test]
    fn square_for_rounds_up() {
        let cfg = FpqaConfig::square_for(10);
        assert_eq!(cfg.slm().cols(), 4);
        assert!(cfg.slm().num_sites() >= 10);
    }

    #[test]
    fn reading_order_mapping() {
        let cfg = FpqaConfig::for_qubits(6, 3);
        assert_eq!(cfg.coord_of(4), GridCoord::new(1, 1));
        assert_eq!(cfg.qubit_at(GridCoord::new(1, 1)), Some(4));
        assert_eq!(cfg.qubit_at(GridCoord::new(1, 2)), Some(5));
        assert_eq!(cfg.qubit_at(GridCoord::new(5, 0)), None);
    }

    #[test]
    fn unmapped_sites_are_none() {
        let cfg = FpqaConfig::for_qubits(5, 3); // 2x3 array, site 5 unmapped
        assert_eq!(cfg.qubit_at(GridCoord::new(1, 2)), None);
    }

    #[test]
    fn positions_follow_pitch() {
        let cfg = FpqaConfig::for_qubits(4, 2);
        let p = cfg.position_of(3);
        assert_eq!((p.x, p.y), (10.0, 10.0));
    }

    #[test]
    fn safety_radius_below_half_pitch() {
        // Required so ancillas can park in row/column gaps (see qaoa.rs).
        let cfg = FpqaConfig::for_qubits(9, 3);
        let safety = cfg.rydberg().radius_um * cfg.rydberg().safety_factor;
        assert!(safety < cfg.pitch_um() / 2.0);
    }

    #[test]
    fn with_aod_grid_overrides() {
        let cfg = FpqaConfig::for_qubits(9, 3).with_aod_grid(5, 7);
        assert_eq!((cfg.aod_rows(), cfg.aod_cols()), (5, 7));
    }
}

//! Table 2: Q-Pilot vs the solver-based compilers on 3-/4-regular QAOA —
//! compile runtime and compiled depth.
//!
//! The exact branch-and-bound scheduler stands in for the SMT solver \[61\]
//! (optimal stage count, exponential runtime, honours a timeout); greedy
//! matching-peeling stands in for the iterative relaxation \[62\]. Q-Pilot's
//! depth counts its create/recycle pulses (+2), matching the paper.
//!
//! Usage: `table2_solver [--sizes 6,10,20,50,100] [--timeout 10] [--seed 4]`

use std::time::Duration;

use qpilot_baselines::{exact_qaoa_stages, greedy_qaoa_stages, SolverOutcome};
use qpilot_bench::{arg_list, arg_num, fpqa_config, route_workload, timed, Table};
use qpilot_core::compile::Workload;
use qpilot_workloads::graphs::random_regular;

fn main() {
    let sizes = arg_list("--sizes", &[6, 10, 20, 50, 100]);
    let timeout = Duration::from_secs_f64(arg_num("--timeout", 10.0f64));
    let seed = arg_num("--seed", 4u64);

    for &degree in &[3u32, 4] {
        println!("\n== Table 2: {degree}-regular graphs (timeout {timeout:?}) ==");
        let mut table = Table::new(&[
            "qubits",
            "edges",
            "solver t(s)",
            "solver depth",
            "greedy t(s)",
            "greedy depth",
            "ours t(s)",
            "ours depth",
        ]);
        for &n in &sizes {
            let Ok(graph) = random_regular(n, degree, seed) else {
                continue;
            };
            let (exact, exact_t) = timed(|| exact_qaoa_stages(n, graph.edges(), timeout));
            let (solver_depth, solver_time) = match exact {
                SolverOutcome::Optimal { stages, .. } => {
                    (stages.to_string(), format!("{exact_t:.3}"))
                }
                SolverOutcome::Timeout { .. } => ("-".into(), "timeout".into()),
            };
            let (greedy_depth, greedy_t) = timed(|| greedy_qaoa_stages(n, graph.edges()));

            let cfg = fpqa_config(n);
            let workload = Workload::qaoa_cost_layer(n, graph.edges().to_vec(), 0.7);
            let (program, ours_t) = timed(|| route_workload(&workload, &cfg));
            table.row(vec![
                n.to_string(),
                graph.num_edges().to_string(),
                solver_time,
                solver_depth,
                format!("{greedy_t:.4}"),
                greedy_depth.to_string(),
                format!("{ours_t:.4}"),
                program.stats().two_qubit_depth.to_string(),
            ]);
        }
        table.print();
    }
    println!(
        "\n(paper: solver depths 3/3/3 (3-reg) and 5/5 (4-reg) before timing out; \
         Q-Pilot compiles every size in <1s within ~4x of optimal depth)"
    );
}

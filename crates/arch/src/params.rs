//! Physical parameters of the FPQA platform.
//!
//! Values follow the paper's Eq. 5 evaluation setup (which itself follows
//! Tan et al. [61] and Bluvstein et al. [11]): 1Q fidelity 99.9%, 2Q (CZ)
//! fidelity 99.5% (Evered et al. [19]), coherence time `T2 = 1.5 s`, and
//! characteristic movement time `T0 = 300 µs`. The time to move a distance
//! `d` follows the constant-jerk profile used in [61]:
//! `t_move(d) = T0 · sqrt(d / d0)` with `d0` the array pitch, which lands
//! typical long moves at the ~0.15 m/s average speed reported in Fig. 9.

use std::fmt;

/// Physical constants of an FPQA machine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhysicalParams {
    /// Trap array pitch (µm).
    pub site_spacing_um: f64,
    /// Single-qubit gate fidelity `f1`.
    pub fidelity_1q: f64,
    /// Two-qubit gate fidelity `f2`.
    pub fidelity_2q: f64,
    /// Qubit coherence time `T2` (s).
    pub t2_s: f64,
    /// Characteristic atom-movement time `T0` (s).
    pub t0_s: f64,
    /// Duration of a (Raman) 1Q gate layer (s).
    pub t_1q_s: f64,
    /// Duration of a (global Rydberg) 2Q gate pulse (s).
    pub t_2q_s: f64,
    /// Duration of one atom-transfer operation (s).
    pub t_transfer_s: f64,
}

impl Default for PhysicalParams {
    fn default() -> Self {
        PhysicalParams {
            site_spacing_um: 10.0,
            fidelity_1q: 0.999,
            fidelity_2q: 0.995,
            t2_s: 1.5,
            t0_s: 300e-6,
            t_1q_s: 1e-6,
            t_2q_s: 0.5e-6,
            t_transfer_s: 50e-6,
        }
    }
}

impl PhysicalParams {
    /// Time (s) to move an atom a distance of `distance_um`, using the
    /// square-root profile `T0 · sqrt(d / pitch)`.
    pub fn move_time_s(&self, distance_um: f64) -> f64 {
        if distance_um <= 0.0 {
            return 0.0;
        }
        self.t0_s * (distance_um / self.site_spacing_um).sqrt()
    }

    /// Average speed (m/s) of a move spanning `distance_um`.
    pub fn move_speed_m_per_s(&self, distance_um: f64) -> f64 {
        let t = self.move_time_s(distance_um);
        if t == 0.0 {
            0.0
        } else {
            (distance_um * 1e-6) / t
        }
    }

    /// Returns a copy with a different two-qubit fidelity (used by the
    /// Fig. 15a sweep over 2Q error rates).
    pub fn with_fidelity_2q(mut self, f2: f64) -> Self {
        self.fidelity_2q = f2;
        self
    }
}

impl fmt::Display for PhysicalParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "params[f1={:.4}, f2={:.4}, T2={:.2}s, T0={:.0}us, pitch={:.1}um]",
            self.fidelity_1q,
            self.fidelity_2q,
            self.t2_s,
            self.t0_s * 1e6,
            self.site_spacing_um
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_time_scales_with_sqrt_distance() {
        let p = PhysicalParams::default();
        let t1 = p.move_time_s(10.0);
        let t4 = p.move_time_s(40.0);
        assert!((t4 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_pitch_move_takes_t0() {
        let p = PhysicalParams::default();
        assert!((p.move_time_s(10.0) - 300e-6).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_is_free() {
        let p = PhysicalParams::default();
        assert_eq!(p.move_time_s(0.0), 0.0);
        assert_eq!(p.move_speed_m_per_s(0.0), 0.0);
    }

    #[test]
    fn long_moves_reach_realistic_speeds() {
        // Fig. 9 reports typical ~0.15 m/s average speeds.
        let p = PhysicalParams::default();
        let v = p.move_speed_m_per_s(200.0); // 20 sites across a 100q array
        assert!(v > 0.10 && v < 0.25, "speed {v} m/s out of expected band");
    }

    #[test]
    fn with_fidelity_2q_overrides() {
        let p = PhysicalParams::default().with_fidelity_2q(0.9);
        assert_eq!(p.fidelity_2q, 0.9);
        assert_eq!(p.fidelity_1q, 0.999);
    }
}

//! The paper's ancilla-vs-SWAP depth table as a standalone report:
//! compile QFT / VQE / GHZ / surface-code syndrome extraction through
//! the flying-ancilla FPQA pipeline and through the SABRE/SWAP baseline,
//! and record the two-qubit depth ratio per `(family, size)`.
//!
//! ```text
//! depth_report [--out BENCH_routing.json] [--check ci/perf_thresholds.json]
//! ```
//!
//! The `families[]` section is merged into `--out`: when the file is an
//! existing `qpilot.bench.routing/v1` report (the usual case — the full
//! document is produced by `perf_report`, which embeds the same
//! section), its `families` key is replaced in place and every other
//! section is preserved; otherwise a minimal document holding only the
//! fresh section is written. With `--check <thresholds.json>` the
//! section is gated against the `routing.families` floors
//! (`min_depth_ratio` per family and size — the paper's ≥2.8× headline
//! claim as a CI wall), exiting non-zero on any violation.

use std::fmt::Write as _;

use qpilot_bench::{arg_value, check, depth};
use qpilot_core::json::{self, Value};

/// Replaces (or appends) the `families` key of a parsed routing report
/// and re-renders the document with one top-level key per line, array
/// elements on their own lines — the same overall shape `perf_report`
/// writes, so a merged file stays diffable.
fn merge_families(doc: &mut Value, families_array: &str) -> String {
    let fresh = json::parse(&format!("{{\"families\": {families_array}}}"))
        .expect("own families section is valid JSON");
    let fresh_families = fresh.get("families").expect("families key").clone();
    let Value::Obj(pairs) = doc else {
        panic!("routing report is not a JSON object");
    };
    match pairs.iter_mut().find(|(k, _)| k == "families") {
        Some((_, v)) => *v = fresh_families,
        None => {
            // Keep `obs_overhead_pct` last, matching perf_report's layout.
            let at = pairs
                .iter()
                .position(|(k, _)| k == "obs_overhead_pct")
                .unwrap_or(pairs.len());
            pairs.insert(at, ("families".to_string(), fresh_families));
        }
    }
    let mut s = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let _ = write!(s, "  {}: ", json::json_str(k));
        match v {
            Value::Arr(items) if !items.is_empty() => {
                s.push_str("[\n");
                for (j, item) in items.iter().enumerate() {
                    let _ = write!(s, "    {}", item.to_json());
                    s.push_str(if j + 1 < items.len() { ",\n" } else { "\n" });
                }
                s.push_str("  ]");
            }
            other => s.push_str(&other.to_json()),
        }
        s.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    s.push_str("}\n");
    s
}

fn main() {
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_routing.json".to_string());
    let check_path = arg_value("--check");

    let rows = depth::measure_families();
    depth::print_families(&rows);
    let families_array = depth::families_json_array(&rows);

    let merged = match std::fs::read_to_string(&out_path) {
        Ok(text) => match json::parse(&text) {
            Ok(mut doc) => merge_families(&mut doc, &families_array),
            Err(e) => {
                eprintln!("error: {out_path} exists but is not valid JSON: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => format!(
            "{{\n  \"schema\": \"qpilot.bench.routing/v1\",\n  \"families\": {families_array}\n}}\n"
        ),
    };
    if let Err(e) = std::fs::write(&out_path, &merged) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote families section into {out_path}");

    if let Some(path) = check_path {
        let thresholds = match check::load_thresholds(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let report = json::parse(&merged).expect("own report is valid JSON");
        check::enforce("depth", &check::check_families(&report, &thresholds));
    }
}

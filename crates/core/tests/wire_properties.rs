//! Property tests for the `qpilot.schedule/v1` wire format over the
//! arena-pooled IR: round-trip identity (value- and byte-level) over both
//! synthetic schedules covering every stage/op/atom/kind combination and
//! real router-produced schedules, plus byte-identity of the arena
//! serialiser against the frozen pre-arena writer in `generic_reference`
//! and the validator's pool-integrity invariant.

use proptest::prelude::*;

use qpilot_circuit::{Circuit, Gate, Qubit};
use qpilot_core::generic::GenericRouter;
use qpilot_core::generic_reference::{LegacySchedule, LegacyStage};
use qpilot_core::wire::{schedule_from_json, schedule_to_json};
use qpilot_core::{
    AncillaId, AtomRef, FpqaConfig, RydbergKind, RydbergOp, Schedule, ScheduleBuilder, TransferOp,
};

const N: u32 = 6;

/// An owned stage description: the test-side value from which both the
/// arena schedule (via `ScheduleBuilder`) and the frozen legacy layout
/// are built.
#[derive(Debug, Clone)]
enum OwnedStage {
    Raman(Vec<Gate>),
    Transfer(Vec<TransferOp>),
    Move { row_y: Vec<f64>, col_x: Vec<f64> },
    Rydberg(Vec<RydbergOp>),
}

fn arb_atom() -> impl Strategy<Value = AtomRef> {
    prop_oneof![
        (0..N).prop_map(AtomRef::Data),
        (0..4u32).prop_map(|a| AtomRef::Ancilla(AncillaId(a))),
    ]
}

fn arb_kind() -> impl Strategy<Value = RydbergKind> {
    prop_oneof![
        Just(RydbergKind::Cz),
        prop_oneof![Just(true), Just(false)].prop_map(|target_b| RydbergKind::CxInto { target_b }),
        (-3.2f64..3.2f64).prop_map(RydbergKind::Zz),
    ]
}

fn arb_raman_gate() -> impl Strategy<Value = Gate> {
    let q = 0..N + 4;
    prop_oneof![
        q.clone().prop_map(|a| Gate::H(Qubit::new(a))),
        q.clone().prop_map(|a| Gate::X(Qubit::new(a))),
        q.clone().prop_map(|a| Gate::Sdg(Qubit::new(a))),
        (q.clone(), -3.2f64..3.2f64).prop_map(|(a, t)| Gate::Rz(Qubit::new(a), t)),
        (q, -3.2f64..3.2f64).prop_map(|(a, t)| Gate::Ry(Qubit::new(a), t)),
    ]
}

fn arb_stage() -> impl Strategy<Value = OwnedStage> {
    prop_oneof![
        prop::collection::vec(arb_raman_gate(), 0..6).prop_map(OwnedStage::Raman),
        prop::collection::vec(
            (
                (0..4u32),
                (0usize..5),
                (0usize..5),
                prop_oneof![Just(true), Just(false)]
            ),
            0..5
        )
        .prop_map(|ops| {
            OwnedStage::Transfer(
                ops.into_iter()
                    .map(|(a, row, col, load)| TransferOp {
                        ancilla: AncillaId(a),
                        row,
                        col,
                        load,
                    })
                    .collect(),
            )
        }),
        (
            prop::collection::vec(-50.0f64..50.0, 0..5),
            prop::collection::vec(-50.0f64..50.0, 0..5)
        )
            .prop_map(|(row_y, col_x)| OwnedStage::Move { row_y, col_x }),
        prop::collection::vec((arb_atom(), arb_atom(), arb_kind()), 0..5).prop_map(|ops| {
            OwnedStage::Rydberg(
                ops.into_iter()
                    .map(|(a, b, kind)| RydbergOp { a, b, kind })
                    .collect(),
            )
        }),
    ]
}

type OwnedScheduleParts = (Vec<OwnedStage>, u32, usize, usize);

fn arb_schedule_parts() -> impl Strategy<Value = OwnedScheduleParts> {
    (
        prop::collection::vec(arb_stage(), 0..12),
        0u32..5,
        1usize..5,
        1usize..5,
    )
}

fn build_arena(parts: &OwnedScheduleParts) -> Schedule {
    let (stages, ancillas, rows, cols) = parts;
    let mut b = ScheduleBuilder::new(N, *rows, *cols);
    b.set_num_ancillas(*ancillas);
    for stage in stages {
        match stage {
            OwnedStage::Raman(gates) => {
                b.raman(gates.iter().copied());
            }
            OwnedStage::Transfer(ops) => {
                b.transfer(ops.iter().copied());
            }
            OwnedStage::Move { row_y, col_x } => {
                b.move_stage(row_y, col_x);
            }
            OwnedStage::Rydberg(ops) => {
                b.rydberg(ops.iter().copied());
            }
        }
    }
    b.finish()
}

fn build_legacy(parts: &OwnedScheduleParts) -> LegacySchedule {
    let (stages, ancillas, rows, cols) = parts;
    LegacySchedule {
        num_data: N,
        num_ancillas: *ancillas,
        aod_rows: *rows,
        aod_cols: *cols,
        stages: stages
            .iter()
            .map(|stage| match stage {
                OwnedStage::Raman(gates) => LegacyStage::Raman(gates.as_slice().into()),
                OwnedStage::Transfer(ops) => LegacyStage::Transfer(ops.clone()),
                OwnedStage::Move { row_y, col_x } => LegacyStage::Move {
                    row_y: row_y.clone(),
                    col_x: col_x.clone(),
                },
                OwnedStage::Rydberg(ops) => LegacyStage::Rydberg(ops.clone()),
            })
            .collect(),
    }
}

fn arb_cz_circuit() -> impl Strategy<Value = Circuit> {
    prop::collection::vec((0..N, 0..N - 1), 1..25).prop_map(|pairs| {
        let mut c = Circuit::new(N);
        for (a, b) in pairs {
            let b = if b >= a { b + 1 } else { b };
            c.cz(a, b);
        }
        c
    })
}

proptest! {
    /// `parse ∘ serialize` is the identity on schedules.
    #[test]
    fn schedule_round_trip_is_identity(parts in arb_schedule_parts()) {
        let s = build_arena(&parts);
        let json = schedule_to_json(&s);
        let back = schedule_from_json(&json).expect("round trip parses");
        prop_assert_eq!(back, s);
    }

    /// `serialize ∘ parse` is the identity on serialised bytes (canonical
    /// form), compared through the existing render path.
    #[test]
    fn schedule_serialisation_is_canonical(parts in arb_schedule_parts()) {
        let s = build_arena(&parts);
        let once = schedule_to_json(&s);
        let twice = schedule_to_json(&schedule_from_json(&once).expect("parses"));
        prop_assert_eq!(once, twice);
    }

    /// The arena serialiser emits byte-for-byte the document the frozen
    /// pre-arena writer emits for the same logical stages: the wire
    /// format is a function of the stage sequence, not the storage
    /// layout.
    #[test]
    fn arena_encoding_matches_pre_arena_encoding(parts in arb_schedule_parts()) {
        let arena = build_arena(&parts);
        let legacy = build_legacy(&parts);
        prop_assert_eq!(schedule_to_json(&arena), legacy.to_json());
    }

    /// Builder-produced and wire-parsed schedules always satisfy the
    /// arena pool invariant (handles tile the pools exactly), including
    /// after a round trip.
    #[test]
    fn builder_and_parser_preserve_pool_integrity(parts in arb_schedule_parts()) {
        let s = build_arena(&parts);
        prop_assert!(s.check_pools().is_ok());
        let back = schedule_from_json(&schedule_to_json(&s)).expect("parses");
        prop_assert!(back.check_pools().is_ok());
    }

    /// Real router output round-trips too, and the parsed schedule renders
    /// (Display) identically to the original — the byte-level check the
    /// service's cache-identity guarantee rests on.
    #[test]
    fn routed_schedules_round_trip(c in arb_cz_circuit()) {
        let config = FpqaConfig::square_for(N);
        let program = GenericRouter::new().route(&c, &config).expect("routes");
        let json = schedule_to_json(program.schedule());
        let back = schedule_from_json(&json).expect("parses");
        prop_assert_eq!(&back, program.schedule());
        prop_assert_eq!(back.to_string(), program.schedule().to_string());
        prop_assert_eq!(back.stats(), program.schedule().stats());
    }

    /// Architecture fingerprinting: equal configs hash equal; any shape,
    /// grid or physical-parameter change hashes different.
    #[test]
    fn config_fingerprint_tracks_architecture(n in 2u32..40, cols in 1usize..8) {
        let fp = |config: &FpqaConfig| {
            let mut h = qpilot_circuit::StableHasher::new();
            config.fingerprint_into(&mut h);
            h.finish()
        };
        let base = FpqaConfig::for_qubits(n, cols);
        prop_assert_eq!(fp(&base), fp(&FpqaConfig::for_qubits(n, cols)));
        prop_assert_ne!(fp(&base), fp(&FpqaConfig::for_qubits(n + 1, cols)));
        prop_assert_ne!(fp(&base), fp(&FpqaConfig::for_qubits(n, cols + 1)));
        let bigger_aod = FpqaConfig::for_qubits(n, cols)
            .with_aod_grid(base.aod_rows() + 1, base.aod_cols());
        prop_assert_ne!(fp(&base), fp(&bigger_aod));
        let mut params = *base.params();
        params.fidelity_2q += 1e-6;
        let tweaked = FpqaConfig::for_qubits(n, cols).with_params(params);
        prop_assert_ne!(fp(&base), fp(&tweaked));
    }
}

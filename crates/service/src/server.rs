//! Serving the protocol over stdio and TCP.
//!
//! Both transports are line-delimited: the daemon reads one request per
//! line and writes exactly one response line, in order. TCP connections
//! are multiplexed onto a single epoll-based reactor thread
//! ([`crate::reactor`]): nonblocking accept plus per-connection
//! read/write state machines, with request handling on a dispatcher
//! pool feeding the same bounded compile queue as before. A `shutdown`
//! request stops the transport: stdio returns from [`serve_stdio`], TCP
//! flushes the response and stops the reactor.
//!
//! Request lines are bounded on both transports: a line longer than
//! [`MAX_REQUEST_LINE_BYTES`] is discarded as it streams in (the daemon
//! never buffers it whole), answered with an error line, and the
//! connection continues — an oversized or hostile client cannot balloon
//! daemon memory or poison its own connection. Invalid UTF-8 is replaced
//! rather than trusted, so arbitrary bytes at worst produce a JSON parse
//! error response.
//!
//! TCP reads also carry a per-line deadline
//! ([`ServerOptions::line_deadline`]): the clock arms when the first
//! byte of a request line arrives and resets at its newline, so a
//! slow-loris client trickling one byte at a time cannot pin a
//! connection slot forever — the daemon closes the connection when
//! the deadline lapses mid-line. Idle connections (no line in progress)
//! are not affected, except during a drain
//! ([`TcpServer::begin_drain`]), when an idle connection is treated as
//! end-of-stream after its buffered requests are answered.

use std::io::{self, BufRead, BufWriter, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::pool::Service;
use crate::protocol::{handle_line, render_error};
use crate::reactor::{ReactorOptions, ReactorServer};

/// Upper bound on one request line (bytes, newline excluded). Generous:
/// a 100-qubit, 1000-gate inline circuit is ~15 KB.
pub const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Tuning for [`TcpServer::spawn_with`].
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// A request line must arrive in full within this window of its
    /// first byte, or the connection is closed (slow-loris defence).
    pub line_deadline: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            line_deadline: Duration::from_secs(10),
        }
    }
}

/// One read-side event from the bounded line reader.
enum LineEvent {
    /// A complete line within the cap (may be empty).
    Line,
    /// A line that exceeded the cap; its bytes were discarded.
    Oversized,
    /// End of stream.
    Eof,
}

/// Reads one newline-terminated line into `buf` (cleared first), capped
/// at [`MAX_REQUEST_LINE_BYTES`]. On overflow the rest of the line is
/// consumed and discarded so the stream stays line-synchronised.
fn read_bounded_line(input: &mut impl BufRead, buf: &mut Vec<u8>) -> io::Result<LineEvent> {
    buf.clear();
    let mut overflowed = false;
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflowed {
                LineEvent::Oversized
            } else if buf.is_empty() {
                LineEvent::Eof
            } else {
                LineEvent::Line // final line without trailing newline
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if !overflowed {
            let body = &chunk[..newline.unwrap_or(take)];
            if buf.len() + body.len() > MAX_REQUEST_LINE_BYTES {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(body);
            }
        }
        input.consume(take);
        if newline.is_some() {
            return Ok(if overflowed {
                LineEvent::Oversized
            } else {
                LineEvent::Line
            });
        }
    }
}

/// The shared request loop behind both transports. Returns the number of
/// requests handled and whether a `shutdown` request ended the loop.
fn serve_loop(
    service: &Service,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<(u64, bool)> {
    let mut handled_count = 0u64;
    let mut buf = Vec::new();
    loop {
        match read_bounded_line(&mut input, &mut buf)? {
            LineEvent::Eof => return Ok((handled_count, false)),
            LineEvent::Oversized => {
                // The line never parsed, so no client id exists to echo;
                // a daemon-assigned one keeps the reply correlatable.
                let error = render_error(
                    &format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                    false,
                    &crate::protocol::next_request_id(),
                );
                output.write_all(error.as_bytes())?;
                output.write_all(b"\n")?;
                output.flush()?;
                handled_count += 1;
            }
            LineEvent::Line => {
                let line = String::from_utf8_lossy(&buf);
                if line.trim().is_empty() {
                    continue; // blank keep-alive lines are not requests
                }
                let handled = handle_line(service, &line);
                output.write_all(handled.response.as_bytes())?;
                output.write_all(b"\n")?;
                output.flush()?;
                handled_count += 1;
                if handled.shutdown {
                    return Ok((handled_count, true));
                }
            }
        }
    }
}

/// Serves requests from `input` to `output` until EOF or a `shutdown`
/// request. Returns the number of requests handled.
///
/// # Errors
///
/// Propagates I/O errors from the transport.
pub fn serve_lines(service: &Service, input: impl BufRead, output: impl Write) -> io::Result<u64> {
    serve_loop(service, input, output).map(|(count, _)| count)
}

/// Serves stdin → stdout (the `qpilotd --stdio` mode).
///
/// # Errors
///
/// See [`serve_lines`].
pub fn serve_stdio(service: &Service) -> io::Result<u64> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_lines(service, stdin.lock(), BufWriter::new(stdout.lock()))
}

/// A running TCP server: the protocol served through the epoll reactor
/// ([`crate::reactor::ReactorServer`]) with [`handle_line`] as its
/// request handler. Dropping the handle without calling
/// [`TcpServer::shutdown`] leaves the reactor thread running detached.
pub struct TcpServer {
    inner: ReactorServer,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving connections on the reactor thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(service: Service, addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        TcpServer::spawn_with(service, addr, ServerOptions::default())
    }

    /// [`TcpServer::spawn`] with explicit [`ServerOptions`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with(
        service: Service,
        addr: impl ToSocketAddrs,
        options: ServerOptions,
    ) -> io::Result<TcpServer> {
        let reactor_options = ReactorOptions {
            line_deadline: options.line_deadline,
            ..ReactorOptions::default()
        };
        let inner = ReactorServer::spawn(
            addr,
            reactor_options,
            Arc::new(move |line: &str| handle_line(&service, line)),
        )?;
        Ok(TcpServer { inner })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Starts a graceful drain: the reactor stops accepting and each
    /// live connection finishes the requests it has already received,
    /// then closes. Pair with [`TcpServer::drain_wait`].
    pub fn begin_drain(&self) {
        self.inner.begin_drain();
    }

    /// Waits up to `timeout` for every live connection to finish after
    /// [`TcpServer::begin_drain`]. Returns `true` when the server went
    /// idle in time.
    pub fn drain_wait(&self, timeout: Duration) -> bool {
        self.inner.drain_wait(timeout)
    }

    /// `true` once the reactor thread has exited (a client sent
    /// `shutdown`, or a drain/shutdown was requested locally).
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }

    /// Stops the reactor and joins its thread. Live connections are
    /// closed after a best-effort flush of completed responses.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }

    /// Blocks until the server stops (a client sent `shutdown`).
    pub fn wait(self) {
        self.inner.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ServiceConfig;
    use std::io::{BufReader, Cursor};
    use std::net::TcpStream;
    use std::time::Instant;

    fn service() -> Service {
        Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 16,
            cache_shards: 2,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn serve_lines_answers_each_request_in_order() {
        let svc = service();
        let input = "{\"op\":\"ping\"}\n\n{\"op\":\"stats\"}\nnot json\n";
        let mut output = Vec::new();
        let n = serve_lines(&svc, Cursor::new(input), &mut output).unwrap();
        assert_eq!(n, 3); // blank line skipped
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("pong"));
        assert!(lines[1].contains("\"op\":\"stats\""));
        assert!(lines[2].starts_with("{\"ok\":false"));
    }

    #[test]
    fn oversized_line_gets_error_and_stream_stays_synchronised() {
        let svc = service();
        let mut input = vec![b'x'; MAX_REQUEST_LINE_BYTES + 10];
        input.push(b'\n');
        input.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut output = Vec::new();
        let n = serve_lines(&svc, Cursor::new(input), &mut output).unwrap();
        assert_eq!(n, 2);
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert!(lines[0].contains("exceeds"), "{}", lines[0]);
        assert!(lines[0].starts_with("{\"ok\":false"));
        assert!(lines[1].contains("pong"), "next request still served");
    }

    #[test]
    fn invalid_utf8_becomes_an_error_response_not_a_dead_connection() {
        let svc = service();
        let mut input: Vec<u8> = vec![0xFF, 0xFE, 0x80, b'\n'];
        input.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut output = Vec::new();
        let n = serve_lines(&svc, Cursor::new(input), &mut output).unwrap();
        assert_eq!(n, 2);
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert!(lines[0].starts_with("{\"ok\":false"));
        assert!(lines[1].contains("pong"));
    }

    #[test]
    fn serve_lines_stops_on_shutdown() {
        let svc = service();
        let input = "{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n";
        let mut output = Vec::new();
        let n = serve_lines(&svc, Cursor::new(input), &mut output).unwrap();
        assert_eq!(n, 1, "requests after shutdown are not served");
    }

    #[test]
    fn tcp_round_trip_and_explicit_shutdown() {
        let server = TcpServer::spawn(service(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("pong"));
        drop(writer);
        server.shutdown();
    }

    #[test]
    fn drain_answers_pipelined_requests_then_closes_the_connection() {
        let server = TcpServer::spawn(service(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // A first round-trip guarantees the acceptor has handed this
        // connection to its own thread before the drain begins.
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("pong"));
        writer
            .write_all(b"{\"op\":\"ping\"}\n{\"op\":\"ping\"}\n")
            .unwrap();
        writer.flush().unwrap();
        server.begin_drain();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("pong"), "first pipelined request answered");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("pong"), "second pipelined request answered");
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert_eq!(n, 0, "drained connection reaches end-of-stream");
        assert!(server.drain_wait(Duration::from_secs(5)), "server idles");
        assert!(server.is_finished(), "acceptor exits on drain");
    }

    #[test]
    fn a_trickling_request_line_is_cut_off_at_the_read_deadline() {
        let options = ServerOptions {
            line_deadline: Duration::from_millis(300),
        };
        let server = TcpServer::spawn_with(service(), "127.0.0.1:0", options).unwrap();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // Half a request, then silence: a slow-loris client.
        writer.write_all(b"{\"op\":\"pi").unwrap();
        writer.flush().unwrap();
        let started = Instant::now();
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0, "the daemon closes the connection, got {line:?}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "cut off near the deadline, not at some OS timeout"
        );
        // The server is still healthy for well-behaved clients.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("pong"));
        server.shutdown();
    }

    #[test]
    fn tcp_client_shutdown_request_stops_acceptor() {
        let server = TcpServer::spawn(service(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"op\":\"shutdown\""));
        // wait() must return because the client requested shutdown.
        server.wait();
    }
}

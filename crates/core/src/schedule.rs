//! The hardware-level schedule IR produced by every router.
//!
//! A [`Schedule`] is an ordered list of [`Stage`]s over two atom
//! populations: SLM data atoms (identified by their data-qubit index) and
//! AOD flying ancillas (identified by [`AncillaId`], each pinned to one AOD
//! grid cross for its lifetime). The stage types map one-to-one onto the
//! paper's Fig. 4 flow:
//!
//! * [`Stage::Raman`] — individually-addressed 1Q gates (Raman laser),
//! * [`Stage::Transfer`] — atom transfer loading/unloading ancillas,
//! * [`Stage::Move`] — an AOD reconfiguration (rows keep their order),
//! * [`Stage::Rydberg`] — one global Rydberg pulse executing all listed
//!   two-qubit interactions simultaneously.
//!
//! Gate accounting follows the paper: each [`RydbergOp`] is one native 2Q
//! gate, each Rydberg stage is one unit of (2Q) circuit depth, and Raman
//! gates count as 1Q gates.

use std::fmt;
use std::sync::Arc;

use qpilot_circuit::{Gate, Qubit};

/// Identifier of a flying ancilla, unique within one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AncillaId(pub u32);

impl fmt::Display for AncillaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A reference to an atom: a fixed SLM data atom or a flying ancilla.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AtomRef {
    /// SLM data atom holding data qubit `q`.
    Data(u32),
    /// AOD flying ancilla.
    Ancilla(AncillaId),
}

impl fmt::Display for AtomRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomRef::Data(q) => write!(f, "q{q}"),
            AtomRef::Ancilla(a) => write!(f, "{a}"),
        }
    }
}

/// The interaction executed on one atom pair during a Rydberg pulse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RydbergKind {
    /// A plain CZ.
    Cz,
    /// A CX implemented as `H(target) · CZ · H(target)`; the implicit
    /// Hadamards are accounted as two extra 1Q gates but the op stays one
    /// native 2Q gate and one depth unit.
    CxInto {
        /// Which operand is the target (`false` = `a`, `true` = `b`).
        target_b: bool,
    },
    /// An Ising `ZZ(θ)` interaction (native-equivalent on neutral atoms;
    /// the paper's QAOA accounting treats one routed edge as one 2Q gate).
    Zz(f64),
}

/// One intended two-qubit interaction within a Rydberg stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RydbergOp {
    /// First atom.
    pub a: AtomRef,
    /// Second atom.
    pub b: AtomRef,
    /// Interaction kind.
    pub kind: RydbergKind,
}

impl RydbergOp {
    /// A CZ between two atoms.
    pub fn cz(a: AtomRef, b: AtomRef) -> Self {
        RydbergOp {
            a,
            b,
            kind: RydbergKind::Cz,
        }
    }

    /// A CX with `control` and `target`.
    pub fn cx(control: AtomRef, target: AtomRef) -> Self {
        RydbergOp {
            a: control,
            b: target,
            kind: RydbergKind::CxInto { target_b: true },
        }
    }

    /// A ZZ(θ) interaction.
    pub fn zz(a: AtomRef, b: AtomRef, theta: f64) -> Self {
        RydbergOp {
            a,
            b,
            kind: RydbergKind::Zz(theta),
        }
    }

    /// The unordered atom pair.
    pub fn pair(&self) -> (AtomRef, AtomRef) {
        if self.a <= self.b {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        }
    }
}

/// An atom-transfer operation: loading an ancilla into an AOD cross from
/// the reservoir (`load = true`) or returning it (`load = false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOp {
    /// The ancilla being moved.
    pub ancilla: AncillaId,
    /// AOD grid row of its cross.
    pub row: usize,
    /// AOD grid column of its cross.
    pub col: usize,
    /// `true` to load into the grid, `false` to unload.
    pub load: bool,
}

/// A shared Raman 1Q layer (see [`Stage::Raman`]).
pub type RamanLayer = Arc<[Gate]>;

/// One stage of a compiled schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Parallel individually-addressed 1Q gates. Gates address the combined
    /// register: data qubits `0..num_data`, ancilla `AncillaId(k)` at
    /// `num_data + k`.
    ///
    /// The payload is shared (`Arc<[Gate]>`): the routers re-use one
    /// Hadamard layer across the several pulses of a flying-ancilla flow,
    /// so "cloning" the layer is a reference-count bump instead of a heap
    /// copy.
    Raman(RamanLayer),
    /// Atom transfers (all in parallel).
    Transfer(Vec<TransferOp>),
    /// AOD reconfiguration: absolute row `y` and column `x` coordinates.
    Move {
        /// New per-row y coordinates (strictly increasing).
        row_y: Vec<f64>,
        /// New per-column x coordinates (strictly increasing).
        col_x: Vec<f64>,
    },
    /// One global Rydberg pulse; `ops` lists the intended interactions.
    Rydberg(Vec<RydbergOp>),
}

/// Aggregate statistics of a schedule (the paper's cost metrics).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScheduleStats {
    /// Number of Rydberg pulses = compiled 2Q circuit depth.
    pub two_qubit_depth: usize,
    /// Native two-qubit gate count (one per [`RydbergOp`]).
    pub two_qubit_gates: usize,
    /// 1Q gate count (Raman gates plus 2 per CX-kind op for its implicit
    /// Hadamards).
    pub one_qubit_gates: usize,
    /// Number of Move stages.
    pub moves: usize,
    /// Number of atom-transfer operations.
    pub transfers: usize,
    /// Peak number of simultaneously loaded ancillas.
    pub peak_ancillas: usize,
}

/// A compiled FPQA program: the schedule plus identification of the data
/// register.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Number of data qubits.
    pub num_data: u32,
    /// Total distinct ancillas ever created.
    pub num_ancillas: u32,
    /// AOD grid rows.
    pub aod_rows: usize,
    /// AOD grid columns.
    pub aod_cols: usize,
    /// The stages in execution order.
    pub stages: Vec<Stage>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new(num_data: u32, aod_rows: usize, aod_cols: usize) -> Self {
        Schedule {
            num_data,
            num_ancillas: 0,
            aod_rows,
            aod_cols,
            stages: Vec::new(),
        }
    }

    /// Register index of an ancilla in the lowered circuit.
    pub fn ancilla_qubit(&self, a: AncillaId) -> Qubit {
        Qubit::new(self.num_data + a.0)
    }

    /// Total register width of the lowered circuit.
    pub fn total_qubits(&self) -> u32 {
        self.num_data + self.num_ancillas
    }

    /// Allocates a fresh ancilla id.
    pub fn fresh_ancilla(&mut self) -> AncillaId {
        let id = AncillaId(self.num_ancillas);
        self.num_ancillas += 1;
        id
    }

    /// Appends a stage.
    pub fn push(&mut self, stage: Stage) {
        self.stages.push(stage);
    }

    /// Computes aggregate statistics in one pass.
    pub fn stats(&self) -> ScheduleStats {
        let mut s = ScheduleStats::default();
        let mut loaded = 0usize;
        for stage in &self.stages {
            match stage {
                Stage::Raman(gates) => s.one_qubit_gates += gates.len(),
                Stage::Transfer(ops) => {
                    s.transfers += ops.len();
                    for op in ops {
                        if op.load {
                            loaded += 1;
                        } else {
                            loaded = loaded.saturating_sub(1);
                        }
                    }
                    s.peak_ancillas = s.peak_ancillas.max(loaded);
                }
                Stage::Move { .. } => s.moves += 1,
                Stage::Rydberg(ops) => {
                    s.two_qubit_depth += 1;
                    s.two_qubit_gates += ops.len();
                    s.one_qubit_gates += ops
                        .iter()
                        .filter(|o| matches!(o.kind, RydbergKind::CxInto { .. }))
                        .count()
                        * 2;
                }
            }
        }
        s
    }

    /// Iterates over the Rydberg stages.
    pub fn rydberg_stages(&self) -> impl Iterator<Item = &Vec<RydbergOp>> {
        self.stages.iter().filter_map(|s| match s {
            Stage::Rydberg(ops) => Some(ops),
            _ => None,
        })
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        writeln!(
            f,
            "schedule[{} data + {} ancillas, {} stages, depth {}, {} 2Q gates]",
            self.num_data,
            self.num_ancillas,
            self.stages.len(),
            stats.two_qubit_depth,
            stats.two_qubit_gates
        )?;
        for (i, stage) in self.stages.iter().enumerate() {
            match stage {
                Stage::Raman(g) => writeln!(f, "  {i:3}: raman x{}", g.len())?,
                Stage::Transfer(t) => writeln!(f, "  {i:3}: transfer x{}", t.len())?,
                Stage::Move { .. } => writeln!(f, "  {i:3}: move")?,
                Stage::Rydberg(ops) => {
                    write!(f, "  {i:3}: rydberg ")?;
                    for (k, op) in ops.iter().enumerate() {
                        if k > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}·{}", op.a, op.b)?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

/// A compiled program: schedule plus cached statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    schedule: Schedule,
    stats: ScheduleStats,
}

impl CompiledProgram {
    /// Wraps a finished schedule, computing its statistics.
    pub fn new(schedule: Schedule) -> Self {
        let stats = schedule.stats();
        CompiledProgram { schedule, stats }
    }

    /// The schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Cached statistics.
    pub fn stats(&self) -> &ScheduleStats {
        &self.stats
    }

    /// Consumes the program, returning the schedule.
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schedule() -> Schedule {
        let mut s = Schedule::new(2, 2, 2);
        let a = s.fresh_ancilla();
        s.push(Stage::Transfer(vec![TransferOp {
            ancilla: a,
            row: 0,
            col: 0,
            load: true,
        }]));
        s.push(Stage::Move {
            row_y: vec![0.5, 10.0],
            col_x: vec![0.5, 10.0],
        });
        s.push(Stage::Rydberg(vec![RydbergOp::cx(
            AtomRef::Data(0),
            AtomRef::Ancilla(a),
        )]));
        s.push(Stage::Raman(vec![Gate::Rz(Qubit::new(2), 0.5)].into()));
        s.push(Stage::Rydberg(vec![RydbergOp::cz(
            AtomRef::Ancilla(a),
            AtomRef::Data(1),
        )]));
        s.push(Stage::Transfer(vec![TransferOp {
            ancilla: a,
            row: 0,
            col: 0,
            load: false,
        }]));
        s
    }

    #[test]
    fn stats_count_everything() {
        let s = sample_schedule();
        let st = s.stats();
        assert_eq!(st.two_qubit_depth, 2);
        assert_eq!(st.two_qubit_gates, 2);
        // 1 Raman rz + 2 implicit H for the CX.
        assert_eq!(st.one_qubit_gates, 3);
        assert_eq!(st.moves, 1);
        assert_eq!(st.transfers, 2);
        assert_eq!(st.peak_ancillas, 1);
    }

    #[test]
    fn fresh_ancillas_are_sequential() {
        let mut s = Schedule::new(3, 1, 1);
        assert_eq!(s.fresh_ancilla(), AncillaId(0));
        assert_eq!(s.fresh_ancilla(), AncillaId(1));
        assert_eq!(s.total_qubits(), 5);
        assert_eq!(s.ancilla_qubit(AncillaId(1)), Qubit::new(4));
    }

    #[test]
    fn rydberg_op_pair_is_normalised() {
        let op = RydbergOp::cz(AtomRef::Ancilla(AncillaId(0)), AtomRef::Data(3));
        assert_eq!(
            op.pair(),
            (AtomRef::Data(3), AtomRef::Ancilla(AncillaId(0)))
        );
    }

    #[test]
    fn compiled_program_caches_stats() {
        let p = CompiledProgram::new(sample_schedule());
        assert_eq!(p.stats().two_qubit_gates, 2);
        assert_eq!(p.schedule().num_ancillas, 1);
    }

    #[test]
    fn display_lists_stages() {
        let text = sample_schedule().to_string();
        assert!(text.contains("rydberg q0·a0"));
        assert!(text.contains("transfer x1"));
    }

    #[test]
    fn rydberg_stage_iterator() {
        let s = sample_schedule();
        assert_eq!(s.rydberg_stages().count(), 2);
    }
}

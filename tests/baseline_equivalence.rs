//! The SWAP-routed baseline circuits must implement the original unitary up
//! to the output permutation induced by the final layout.

use qpilot::arch::CouplingGraph;
use qpilot::baselines::compile_returning_circuit;
use qpilot::circuit::Circuit;
use qpilot::sim::equiv::verify_compiled;

fn line(n: usize) -> CouplingGraph {
    CouplingGraph::from_edges("line", n, (0..n - 1).map(|i| (i, i + 1)))
}

/// Appends SWAPs to `compiled` so the final layout returns to the trivial
/// one, then checks equivalence against `original` padded to device width.
fn assert_baseline_equivalent(original: &Circuit, device: &CouplingGraph) {
    let (_, compiled, layout) = compile_returning_circuit(original, device).expect("compiles");
    // Undo the permutation: for each logical qubit, swap its physical
    // carrier back to the home position (selection-sort by swaps).
    let mut restored = compiled.clone();
    let mut layout = layout;
    for logical in 0..layout.len() {
        let phys = layout[logical];
        if phys != logical {
            restored.swap(logical as u32, phys as u32);
            // Update: whichever logical sat on `logical` moves to `phys`.
            for slot in layout.iter_mut() {
                if *slot == logical {
                    *slot = phys;
                    break;
                }
            }
            layout[logical] = logical;
        }
    }
    let reference = original.remapped(device.num_qubits() as u32, |q| q);
    let res = verify_compiled(&restored, &reference);
    assert!(
        res.equivalent,
        "baseline routing broke the circuit: {res:?}"
    );
}

#[test]
fn line_device_distant_cz() {
    let mut c = Circuit::new(4);
    c.h(0).cz(0, 3).t(3).cx(1, 2);
    assert_baseline_equivalent(&c, &line(4));
}

#[test]
fn square_device_random_circuit() {
    use qpilot::workloads::random::{random_circuit, RandomCircuitConfig};
    let c = random_circuit(&RandomCircuitConfig {
        num_qubits: 6,
        two_qubit_gates: 10,
        one_qubit_gates: 6,
        seed: 3,
    });
    let device = qpilot::arch::devices::square_lattice(2, 3);
    assert_baseline_equivalent(&c, &device);
}

#[test]
fn zz_heavy_circuit() {
    let mut c = Circuit::new(5);
    c.zz(0, 4, 0.7).zz(1, 3, -0.2).cz(0, 2);
    assert_baseline_equivalent(&c, &line(5));
}

#[test]
fn triangular_device_qaoa_circuit() {
    let g = qpilot::workloads::graphs::erdos_renyi(6, 0.5, 9);
    let c = g.qaoa_circuit_p1();
    let device = qpilot::arch::devices::triangular_lattice(2, 3);
    assert_baseline_equivalent(&c, &device);
}
